//! Operation spans: per-op contexts minted at client op start and marked
//! with sim-time phase transitions as the op moves through the control
//! plane, the fabric, NIC handlers, and storage completion.
//!
//! A span's phase marks *telescope*: each mark's duration is the time since
//! the previous mark (the first since span start), and closing a span
//! appends a final `completed`/`rejected` mark at the end time. The phase
//! durations therefore sum exactly — in sim-clock picoseconds, not
//! approximately — to the op's end-to-end latency.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::time::{Dur, Time};

/// Identifier of one operation span. `0` is the invalid/no-op id (what a
/// disabled book hands out).
pub type SpanId = u64;

/// Canonical phase-mark names. Call sites may add their own, but the
/// standard lifecycle uses these so exports and tests agree on naming.
pub mod phase {
    /// Implicit first phase: time from span start to the first mark.
    pub const QUEUED: &str = "queued";
    /// Control-plane placement/resolve finished.
    pub const RESOLVED: &str = "resolved";
    /// Request(s) handed to the NIC / fanned out to storage nodes.
    pub const FANNED_OUT: &str = "fanned-out";
    /// A storage NIC authenticated the request (sPIN header handler or
    /// read-path capability check).
    pub const NIC_VALIDATED: &str = "nic-validated";
    /// A storage host CPU validated an RPC-path request.
    pub const CPU_VALIDATED: &str = "cpu-validated";
    /// All fan-in pieces arrived back and were stitched together.
    pub const REASSEMBLED: &str = "reassembled";
    /// Read served from the client cache without touching the network.
    pub const CACHE_HIT: &str = "cache-hit";
    /// A stripe needed erasure-coded reconstruction on the read path.
    pub const DEGRADED: &str = "degraded";
    /// A storage NIC finished collecting all segments of an offloaded
    /// gather read (remote survivor fetches landed in staging).
    pub const GATHERED: &str = "gathered";
    /// The firmware EC engine reconstructed missing chunks on the NIC.
    pub const NIC_RECONSTRUCTED: &str = "nic-reconstructed";
    /// One packet moved through a NIC handler pipeline (recorded per
    /// packet, not per op — fine-grained pipeline phase accounting).
    pub const NIC_PKT: &str = "nic-pkt";
    /// A gather responder pushed one DMA batch of response packets.
    pub const STREAMED: &str = "streamed";
    /// The readahead tail was split off into a background fill; the
    /// miss-critical span excludes it from this point on.
    pub const READAHEAD: &str = "readahead";
    /// The op was re-issued after a Busy/NACK.
    pub const RETRIED: &str = "retried";
    /// Repair reconstructed the lost shard.
    pub const REBUILT: &str = "rebuilt";
    /// Control-plane commit (write/repair) done.
    pub const COMMITTED: &str = "committed";
    /// Terminal mark of a successful span.
    pub const COMPLETED: &str = "completed";
    /// Terminal mark of a failed/rejected span.
    pub const REJECTED: &str = "rejected";
}

/// What kind of client operation a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    Write,
    Read,
    Repair,
    Meta,
    /// One span covering a whole batch of metadata ops (a `MetaWorkload`
    /// storm): op-count attribution in the label instead of one span per
    /// op, so storms do not saturate the completed ring.
    MetaBulk,
}

impl OpKind {
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Write => "write",
            OpKind::Read => "read",
            OpKind::Repair => "repair",
            OpKind::Meta => "meta",
            OpKind::MetaBulk => "meta-bulk",
        }
    }
}

/// One operation's recorded lifecycle.
#[derive(Clone, Debug)]
pub struct OpSpan {
    pub id: SpanId,
    pub kind: OpKind,
    /// Export track this span renders on (e.g. `client-0`).
    pub track: String,
    /// Human-readable label (e.g. `write f3 64KiB`).
    pub label: String,
    pub start: Time,
    /// Meaningful once closed; equals `start` while open.
    pub end: Time,
    pub ok: bool,
    /// Time-ordered phase marks; closing appends the terminal mark.
    pub marks: Vec<(&'static str, Time)>,
}

impl OpSpan {
    pub fn e2e(&self) -> Dur {
        self.end.since(self.start)
    }

    /// Per-phase latency breakdown. Each entry is a mark name and the time
    /// elapsed since the previous mark (span start for the first), so the
    /// durations sum exactly to [`OpSpan::e2e`].
    pub fn phase_durations(&self) -> Vec<(&'static str, Dur)> {
        let mut out = Vec::with_capacity(self.marks.len());
        let mut prev = self.start;
        for &(name, at) in &self.marks {
            out.push((name, at.since(prev)));
            prev = at;
        }
        out
    }

    /// Time of the first mark with this name.
    pub fn mark_time(&self, name: &str) -> Option<Time> {
        self.marks.iter().find(|(n, _)| *n == name).map(|&(_, t)| t)
    }

    pub fn has_mark(&self, name: &str) -> bool {
        self.mark_time(name).is_some()
    }
}

/// The span registry: open spans by id, a bounded ring of completed spans,
/// and a correlation table mapping wire-level request ids (`greq`) to open
/// spans so storage-side components can mark phases without carrying span
/// ids through the packet format.
pub struct SpanBook {
    enabled: bool,
    next_id: SpanId,
    open: BTreeMap<SpanId, OpSpan>,
    done: VecDeque<OpSpan>,
    cap: usize,
    dropped: u64,
    corr: HashMap<u64, SpanId>,
}

impl SpanBook {
    /// An enabled book retaining the most recent `cap` completed spans.
    pub fn new(cap: usize) -> SpanBook {
        SpanBook {
            enabled: true,
            next_id: 1,
            open: BTreeMap::new(),
            done: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
            corr: HashMap::new(),
        }
    }

    /// A disabled book: `begin` returns the invalid id and everything else
    /// is a cheap no-op.
    pub fn disabled() -> SpanBook {
        let mut b = SpanBook::new(1);
        b.enabled = false;
        b
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Open a new span. Returns `0` when the book is disabled.
    pub fn begin(
        &mut self,
        kind: OpKind,
        track: impl Into<String>,
        label: impl Into<String>,
        at: Time,
    ) -> SpanId {
        if !self.enabled {
            return 0;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.open.insert(
            id,
            OpSpan {
                id,
                kind,
                track: track.into(),
                label: label.into(),
                start: at,
                end: at,
                ok: false,
                marks: Vec::new(),
            },
        );
        id
    }

    /// Record a phase mark on an open span. Unknown/closed ids are ignored
    /// (late marks can legitimately race span completion, e.g. a storage
    /// ack arriving after a client-side retry already closed the op).
    ///
    /// Mark times are clamped monotonic: concurrent sub-flows of one op
    /// (e.g. two gather responders streaming to the same span) may record
    /// phases stamped at *future* ready-times in arrival order, so a
    /// later append can carry an earlier stamp. The telescoping
    /// invariant (phase durations sum exactly to e2e) requires
    /// nondecreasing marks, and clamping preserves the total.
    pub fn mark(&mut self, id: SpanId, name: &'static str, at: Time) {
        if let Some(sp) = self.open.get_mut(&id) {
            sp.marks.push((name, Self::monotonic(sp, at)));
        }
    }

    fn monotonic(sp: &OpSpan, at: Time) -> Time {
        match sp.marks.last() {
            Some(&(_, last)) if at < last => last,
            _ => at,
        }
    }

    /// Replace an open span's label (e.g. a bulk span stamping its final
    /// op count at completion time).
    pub fn relabel(&mut self, id: SpanId, label: impl Into<String>) {
        if let Some(sp) = self.open.get_mut(&id) {
            sp.label = label.into();
        }
    }

    /// Associate a wire-level correlation key (e.g. `greq`) with a span.
    pub fn correlate(&mut self, key: u64, id: SpanId) {
        if id != 0 {
            self.corr.insert(key, id);
        }
    }

    /// Drop a correlation (op finished or re-keyed on retry).
    pub fn decorrelate(&mut self, key: u64) -> Option<SpanId> {
        self.corr.remove(&key)
    }

    /// Span currently correlated with `key`, if any.
    pub fn corr_span(&self, key: u64) -> Option<SpanId> {
        self.corr.get(&key).copied()
    }

    /// Mark a phase on the span correlated with `key`.
    pub fn mark_corr(&mut self, key: u64, name: &'static str, at: Time) {
        if let Some(id) = self.corr.get(&key).copied() {
            self.mark(id, name, at);
        }
    }

    /// Like [`SpanBook::mark_corr`] but records only the first occurrence
    /// of `name` (fan-out ops validate once per target).
    pub fn mark_corr_once(&mut self, key: u64, name: &'static str, at: Time) {
        if let Some(id) = self.corr.get(&key).copied() {
            if let Some(sp) = self.open.get_mut(&id) {
                if !sp.has_mark(name) {
                    sp.marks.push((name, Self::monotonic(sp, at)));
                }
            }
        }
    }

    /// Close a span: append the terminal mark and move it to the completed
    /// ring. Returns the closed span (None for unknown/invalid ids).
    pub fn end(&mut self, id: SpanId, at: Time, ok: bool) -> Option<&OpSpan> {
        let mut sp = self.open.remove(&id)?;
        // Same monotonic clamp as `mark`: a future-stamped phase (DMA
        // ready-time) may sit past the completion time.
        let at = Self::monotonic(&sp, at);
        sp.end = at;
        sp.ok = ok;
        sp.marks.push((
            if ok {
                phase::COMPLETED
            } else {
                phase::REJECTED
            },
            at,
        ));
        if self.done.len() == self.cap {
            self.done.pop_front();
            self.dropped += 1;
        }
        self.done.push_back(sp);
        self.done.back()
    }

    /// Open spans (should be 0 at quiesce — asserted by lifecycle tests).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Ids of the currently open spans (diagnostics).
    pub fn open_ids(&self) -> impl Iterator<Item = SpanId> + '_ {
        self.open.keys().copied()
    }

    /// Completed spans, oldest first.
    pub fn done(&self) -> impl Iterator<Item = &OpSpan> {
        self.done.iter()
    }

    pub fn done_count(&self) -> usize {
        self.done.len()
    }

    /// Drain every completed span out of the ring, oldest first.
    ///
    /// Long-horizon harnesses call this at checkpoints so the ring never
    /// reaches `cap` and the `dropped == 0` invariant holds at arbitrary
    /// horizon. Metrics are folded at `end()` time, so draining loses no
    /// histogram data; only on-demand exporters (e.g. Chrome trace) see a
    /// window instead of the full history. Does not touch `dropped`.
    pub fn drain_closed(&mut self) -> Vec<OpSpan> {
        self.done.drain(..).collect()
    }

    /// Completed spans evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_telescope_to_e2e() {
        let mut b = SpanBook::new(16);
        let id = b.begin(OpKind::Write, "client-0", "write f1", Time(1_000));
        b.mark(id, phase::RESOLVED, Time(1_500));
        b.mark(id, phase::FANNED_OUT, Time(2_000));
        b.mark(id, phase::NIC_VALIDATED, Time(4_000));
        b.end(id, Time(9_000), true);
        let sp = b.done().next().expect("closed span");
        assert_eq!(sp.e2e(), Dur(8_000));
        let phases = sp.phase_durations();
        assert_eq!(phases.len(), 4);
        let total: u64 = phases.iter().map(|&(_, d)| d.0).sum();
        assert_eq!(total, sp.e2e().0);
        assert_eq!(phases[0], (phase::RESOLVED, Dur(500)));
        assert_eq!(phases[3], (phase::COMPLETED, Dur(5_000)));
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn correlation_marks_open_span_only() {
        let mut b = SpanBook::new(16);
        let id = b.begin(OpKind::Read, "client-1", "read f2", Time(0));
        b.correlate(77, id);
        b.mark_corr(77, phase::NIC_VALIDATED, Time(10));
        b.mark_corr_once(77, phase::CPU_VALIDATED, Time(20));
        b.mark_corr_once(77, phase::CPU_VALIDATED, Time(30));
        b.end(id, Time(40), true);
        // Late mark after close: ignored, no panic.
        b.mark_corr(77, phase::NIC_VALIDATED, Time(50));
        let sp = b.done().next().expect("span");
        assert_eq!(sp.marks.len(), 3); // nic + one cpu + completed
        assert_eq!(sp.mark_time(phase::CPU_VALIDATED), Some(Time(20)));
    }

    #[test]
    fn disabled_book_is_inert() {
        let mut b = SpanBook::disabled();
        let id = b.begin(OpKind::Meta, "client-0", "stat", Time(0));
        assert_eq!(id, 0);
        b.mark(id, phase::RESOLVED, Time(5));
        assert!(b.end(id, Time(10), true).is_none());
        assert_eq!(b.open_count(), 0);
        assert_eq!(b.done_count(), 0);
    }

    #[test]
    fn done_ring_is_bounded() {
        let mut b = SpanBook::new(2);
        for i in 0..5 {
            let id = b.begin(OpKind::Write, "c", format!("w{i}"), Time(i));
            b.end(id, Time(i + 1), true);
        }
        assert_eq!(b.done_count(), 2);
        assert_eq!(b.dropped(), 3);
        assert_eq!(b.done().next().expect("span").label, "w3");
    }

    #[test]
    fn periodic_drain_prevents_drops() {
        let mut b = SpanBook::new(4);
        let mut drained = Vec::new();
        for i in 0..64 {
            let id = b.begin(OpKind::Write, "c", format!("w{i}"), Time(i));
            b.end(id, Time(i + 1), true);
            if i % 3 == 2 {
                drained.extend(b.drain_closed());
            }
        }
        drained.extend(b.drain_closed());
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.done_count(), 0);
        assert_eq!(drained.len(), 64);
        assert_eq!(drained[0].label, "w0");
        assert_eq!(drained[63].label, "w63");
    }

    #[test]
    fn rejected_span_gets_rejected_mark() {
        let mut b = SpanBook::new(4);
        let id = b.begin(OpKind::Repair, "client-0", "repair", Time(0));
        b.end(id, Time(7), false);
        let sp = b.done().next().expect("span");
        assert!(!sp.ok);
        assert!(sp.has_mark(phase::REJECTED));
        assert!(!sp.has_mark(phase::COMPLETED));
    }
}
