//! Chrome trace-event export: completed [`OpSpan`]s plus the free-form
//! [`Trace`] ring rendered as a JSON document Perfetto and
//! `chrome://tracing` load directly.
//!
//! Layout: one process (`nadfs-sim`), one named thread ("track") per
//! component — `client-N`, `control`, `nic-N`, `storage-N` — all on the
//! simulated clock. Spans become complete (`ph: "X"`) slices with nested
//! per-phase child slices; trace-ring records become instant (`ph: "i"`)
//! events. Timestamps are microseconds (the trace-event unit) derived from
//! sim-time picoseconds, so sub-nanosecond precision survives as decimals.

use std::collections::BTreeMap;

use super::json;
use super::span::OpSpan;
use crate::time::Time;
use crate::trace::Trace;

const PID: u32 = 1;

fn ts_us(t: Time) -> String {
    json::fmt_f64(t.ps() as f64 / 1e6)
}

struct Tracks {
    ids: BTreeMap<String, u32>,
}

impl Tracks {
    fn new() -> Tracks {
        Tracks {
            ids: BTreeMap::new(),
        }
    }

    fn tid(&mut self, track: &str) -> u32 {
        if let Some(&id) = self.ids.get(track) {
            return id;
        }
        let id = self.ids.len() as u32 + 1;
        self.ids.insert(track.to_owned(), id);
        id
    }
}

fn push_event(out: &mut Vec<String>, body: String) {
    out.push(format!("    {{{body}}}"));
}

/// Render spans + trace ring into a trace-event JSON document.
pub fn chrome_trace_json<'a>(spans: impl Iterator<Item = &'a OpSpan>, trace: &Trace) -> String {
    let mut tracks = Tracks::new();
    let mut events: Vec<String> = Vec::new();

    for sp in spans {
        let tid = tracks.tid(&sp.track);
        push_event(
            &mut events,
            format!(
                "\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": {PID}, \"tid\": {tid}, \"args\": {{\"span\": {}, \"ok\": {}}}",
                json::str_lit(&sp.label),
                json::str_lit(sp.kind.as_str()),
                ts_us(sp.start),
                json::fmt_f64(sp.e2e().0 as f64 / 1e6),
                sp.id,
                sp.ok
            ),
        );
        // Nested per-phase slices: each phase spans from the previous mark
        // (span start for the first) to its own mark time.
        let mut prev = sp.start;
        for &(name, at) in &sp.marks {
            push_event(
                &mut events,
                format!(
                    "\"name\": {}, \"cat\": \"phase\", \"ph\": \"X\", \"ts\": {}, \
                     \"dur\": {}, \"pid\": {PID}, \"tid\": {tid}, \
                     \"args\": {{\"span\": {}}}",
                    json::str_lit(name),
                    ts_us(prev),
                    json::fmt_f64(at.since(prev).0 as f64 / 1e6),
                    sp.id
                ),
            );
            prev = at;
        }
    }

    for e in trace.entries() {
        let track = match e.node {
            Some(n) => format!("{}-{n}", e.who),
            None => e.who.to_owned(),
        };
        let tid = tracks.tid(&track);
        push_event(
            &mut events,
            format!(
                "\"name\": {}, \"cat\": {}, \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \
                 \"pid\": {PID}, \"tid\": {tid}",
                json::str_lit(&e.what),
                json::str_lit(e.who),
                ts_us(e.at)
            ),
        );
    }

    // Metadata events naming the process and each track. Track ids were
    // assigned in first-appearance order; emit metadata sorted by name so
    // output is deterministic.
    let mut meta: Vec<String> = Vec::new();
    meta.push(format!(
        "    {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {PID}, \
         \"args\": {{\"name\": \"nadfs-sim\"}}}}"
    ));
    for (track, tid) in &tracks.ids {
        meta.push(format!(
            "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {PID}, \
             \"tid\": {tid}, \"args\": {{\"name\": {}}}}}",
            json::str_lit(track)
        ));
    }

    let mut s = String::new();
    s.push_str("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
    let all: Vec<String> = meta.into_iter().chain(events).collect();
    s.push_str(&all.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::json::{self, Json};
    use crate::telemetry::span::{phase, OpKind, SpanBook};
    use crate::trace::Trace;

    fn track_names(doc: &Json) -> Vec<String> {
        doc.get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array")
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
            .filter_map(|n| n.as_str().map(str::to_owned))
            .collect()
    }

    #[test]
    fn export_has_tracks_spans_and_instants() {
        let mut book = SpanBook::new(8);
        let id = book.begin(OpKind::Write, "client-0", "write f1", Time(1_000_000));
        book.mark(id, phase::RESOLVED, Time(2_000_000));
        book.end(id, Time(5_000_000), true);

        let trace = Trace::new(16);
        trace
            .borrow_mut()
            .emit_from(Time(3_000_000), "nic", Some(4), || {
                "validated w1".to_owned()
            });
        trace
            .borrow_mut()
            .emit(Time(4_000_000), "control", "commit f1");

        let out = chrome_trace_json(book.done(), &trace.borrow());
        let doc = json::parse(&out).expect("chrome JSON parses");
        let tracks = track_names(&doc);
        assert!(tracks.contains(&"client-0".to_owned()));
        assert!(tracks.contains(&"nic-4".to_owned()));
        assert!(tracks.contains(&"control".to_owned()));

        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("events");
        // Parent slice + 2 phase slices (resolved, completed) + 2 instants
        // + 1 process_name + 3 thread_name.
        assert_eq!(events.len(), 9);
        let parent = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("write f1"))
            .expect("parent slice");
        assert_eq!(parent.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(parent.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(parent.get("dur").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn empty_export_is_valid_json() {
        let book = SpanBook::new(1);
        let trace = Trace::disabled();
        let out = chrome_trace_json(book.done(), &trace.borrow());
        let doc = json::parse(&out).expect("parses");
        assert!(doc.get("traceEvents").and_then(Json::as_array).is_some());
    }
}
