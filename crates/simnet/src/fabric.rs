//! The network fabric: every node connects to a single switch through a
//! full-duplex link. This is the SST-replacement topology used throughout
//! the reproduction (the paper configures SST as a 400 Gbit/s network with
//! 2048 B MTU and 20 ns link latency).
//!
//! Model, per direction:
//!
//! ```text
//!  NIC --egress gate--> [up_q] --serialize@bw--> link(lat) --> switch(delay)
//!      --> [down_q] --serialize@bw--> link(lat) --> NIC ingress (gated)
//! ```
//!
//! Backpressure is lossless end to end:
//! * the NIC can only submit while the per-node egress gate has credits
//!   (`up_q` space) — PsPIN handlers block on this, which is how the paper's
//!   PBT goodput halving and IPC collapse emerge;
//! * an uplink will not start serializing a packet whose destination
//!   `down_q` is full (PFC-like hold, with head-of-line blocking);
//! * a downlink will not start serializing until the destination NIC's
//!   ingress gate grants a credit (returned by the NIC when it has admitted
//!   the packet into its own buffers).

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::{Component, ComponentId, Ctx};
use crate::gate::{Gate, GateWake, SharedGate};
use crate::packet::{Arrive, NetPacket, NodeId, Payload};
use crate::time::{Bandwidth, Dur};

/// Fabric configuration; defaults follow §III-D of the paper.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    pub link_bw: Bandwidth,
    pub link_latency: Dur,
    pub switch_delay: Dur,
    /// NIC egress queue depth (packets) — credits of the egress gate.
    pub up_queue_cap: usize,
    /// Switch per-output-port queue depth (packets).
    pub down_queue_cap: usize,
    /// Default NIC ingress buffer depth (packets) — credits of ingress gate.
    pub ingress_cap: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            link_bw: Bandwidth::from_gbit_per_sec(400),
            link_latency: Dur::from_ns(20),
            switch_delay: Dur::from_ns(100),
            up_queue_cap: 16,
            down_queue_cap: 64,
            ingress_cap: 32,
        }
    }
}

/// Handle a NIC keeps to interact with the fabric.
#[derive(Clone)]
pub struct NodePort {
    pub node: NodeId,
    pub fabric: ComponentId,
    /// Credits for the node's uplink queue. Take one, then send
    /// [`Submit`]; the fabric returns the credit when the packet has left
    /// the uplink.
    pub egress_gate: SharedGate,
    /// Credits for the NIC's own ingress buffer. The fabric takes one per
    /// delivered packet; the NIC must release it once the packet has been
    /// consumed from its ingress stage.
    pub ingress_gate: SharedGate,
}

impl NodePort {
    /// Convenience: attempt to take an egress credit and submit in one go.
    /// Returns false if the gate is exhausted (caller should register as a
    /// waiter on `egress_gate` and retry on wake).
    pub fn try_submit<P: Payload>(&self, ctx: &mut Ctx<'_>, pkt: NetPacket<P>) -> bool {
        if self.egress_gate.borrow_mut().try_take() {
            ctx.schedule(Dur::ZERO, self.fabric, Box::new(Submit { pkt }));
            true
        } else {
            false
        }
    }
}

/// NIC → fabric: inject a packet (an egress credit must have been taken).
pub struct Submit<P: Payload> {
    pub pkt: NetPacket<P>,
}

/// Byte/packet accounting per node, for goodput measurements.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    pub tx_pkts: u64,
    pub tx_bytes: u64,
    pub rx_pkts: u64,
    pub rx_bytes: u64,
}

#[derive(Debug, Default)]
pub struct FabricStats {
    pub per_node: Vec<NodeStats>,
    /// Times an uplink had to hold because a destination queue was full.
    pub switch_holds: u64,
}

struct UpLink<P: Payload> {
    q: VecDeque<NetPacket<P>>,
    busy: bool,
}

struct DownLink<P: Payload> {
    q: VecDeque<NetPacket<P>>,
    busy: bool,
}

struct NodeState<P: Payload> {
    delivery: ComponentId,
    up: UpLink<P>,
    down: DownLink<P>,
    egress_gate: SharedGate,
    ingress_gate: SharedGate,
    /// Uplinks (by node id) whose head packet targets this node and is
    /// waiting for `down.q` space.
    hol_waiters: Vec<NodeId>,
}

// Internal self-events.
struct UpTxDone {
    node: NodeId,
}
struct SwArrive<P: Payload> {
    pkt: NetPacket<P>,
}
struct DownTxDone {
    node: NodeId,
}

/// The fabric component. Register all nodes before adding it to the engine.
pub struct Fabric<P: Payload> {
    cfg: FabricConfig,
    nodes: Vec<NodeState<P>>,
    stats: Rc<RefCell<FabricStats>>,
    self_id: ComponentId,
}

impl<P: Payload> Fabric<P> {
    /// `self_id` must be pre-reserved with [`crate::engine::Engine::reserve_id`]
    /// so NICs can be wired to it.
    pub fn new(cfg: FabricConfig, self_id: ComponentId) -> Fabric<P> {
        Fabric {
            cfg,
            nodes: Vec::new(),
            stats: Rc::new(RefCell::new(FabricStats::default())),
            self_id,
        }
    }

    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    pub fn stats(&self) -> Rc<RefCell<FabricStats>> {
        self.stats.clone()
    }

    /// Register a node delivered to component `delivery`; `ingress_cap`
    /// overrides the config default when `Some`.
    pub fn register_node(&mut self, delivery: ComponentId, ingress_cap: Option<usize>) -> NodePort {
        let node = self.nodes.len();
        let egress_gate = Gate::new(self.cfg.up_queue_cap);
        let ingress_gate = Gate::new(ingress_cap.unwrap_or(self.cfg.ingress_cap));
        self.nodes.push(NodeState {
            delivery,
            up: UpLink {
                q: VecDeque::new(),
                busy: false,
            },
            down: DownLink {
                q: VecDeque::new(),
                busy: false,
            },
            egress_gate: egress_gate.clone(),
            ingress_gate: ingress_gate.clone(),
            hol_waiters: Vec::new(),
        });
        self.stats.borrow_mut().per_node.push(NodeStats::default());
        NodePort {
            node,
            fabric: self.self_id,
            egress_gate,
            ingress_gate,
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn try_start_uplink(&mut self, ctx: &mut Ctx<'_>, n: NodeId) {
        if self.nodes[n].up.busy {
            return;
        }
        let Some(head) = self.nodes[n].up.q.front() else {
            return;
        };
        let dst = head.dst;
        // PFC-like hold: don't serialize into a full destination queue.
        if dst != n && self.nodes[dst].down.q.len() >= self.cfg.down_queue_cap {
            self.stats.borrow_mut().switch_holds += 1;
            if !self.nodes[dst].hol_waiters.contains(&n) {
                self.nodes[dst].hol_waiters.push(n);
            }
            return;
        }
        let bytes = head.wire_bytes() as u64;
        self.nodes[n].up.busy = true;
        let t = self.cfg.link_bw.tx_time(bytes);
        ctx.schedule_self(t, Box::new(UpTxDone { node: n }));
    }

    fn try_start_downlink(&mut self, ctx: &mut Ctx<'_>, n: NodeId) {
        if self.nodes[n].down.busy {
            return;
        }
        let Some(head) = self.nodes[n].down.q.front() else {
            return;
        };
        // Credit-based delivery into the NIC ingress buffer.
        let granted = self.nodes[n].ingress_gate.borrow_mut().try_take();
        if !granted {
            let fid = self.self_id;
            self.nodes[n]
                .ingress_gate
                .borrow_mut()
                .register_waiter(fid, n as u64);
            return;
        }
        let bytes = head.wire_bytes() as u64;
        self.nodes[n].down.busy = true;
        let t = self.cfg.link_bw.tx_time(bytes);
        ctx.schedule_self(t, Box::new(DownTxDone { node: n }));
    }

    fn on_up_tx_done(&mut self, ctx: &mut Ctx<'_>, n: NodeId) {
        let pkt = self.nodes[n]
            .up
            .q
            .pop_front()
            .expect("UpTxDone with empty queue");
        self.nodes[n].up.busy = false;
        {
            let mut st = self.stats.borrow_mut();
            st.per_node[n].tx_pkts += 1;
            st.per_node[n].tx_bytes += pkt.wire_bytes() as u64;
        }
        // The uplink queue freed a slot: return the egress credit.
        self.nodes[n].egress_gate.borrow_mut().release(ctx);
        let flight = self.cfg.link_latency + self.cfg.switch_delay;
        ctx.schedule_self(flight, Box::new(SwArrive { pkt }));
        self.try_start_uplink(ctx, n);
    }

    fn on_sw_arrive(&mut self, ctx: &mut Ctx<'_>, pkt: NetPacket<P>) {
        let dst = pkt.dst;
        self.nodes[dst].down.q.push_back(pkt);
        self.try_start_downlink(ctx, dst);
    }

    fn on_down_tx_done(&mut self, ctx: &mut Ctx<'_>, n: NodeId) {
        let pkt = self.nodes[n]
            .down
            .q
            .pop_front()
            .expect("DownTxDone with empty queue");
        self.nodes[n].down.busy = false;
        {
            let mut st = self.stats.borrow_mut();
            st.per_node[n].rx_pkts += 1;
            st.per_node[n].rx_bytes += pkt.wire_bytes() as u64;
        }
        let delivery = self.nodes[n].delivery;
        ctx.schedule(self.cfg.link_latency, delivery, Box::new(Arrive { pkt }));
        // A down-queue slot freed: retry uplinks that were held on it.
        let waiters = std::mem::take(&mut self.nodes[n].hol_waiters);
        for w in waiters {
            self.try_start_uplink(ctx, w);
        }
        self.try_start_downlink(ctx, n);
    }
}

impl<P: Payload> Component for Fabric<P> {
    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
        let ev = match ev.downcast::<Submit<P>>() {
            Ok(s) => {
                let n = s.pkt.src;
                debug_assert!(
                    self.nodes[n].up.q.len() < self.cfg.up_queue_cap,
                    "Submit without egress credit"
                );
                self.nodes[n].up.q.push_back(s.pkt);
                self.try_start_uplink(ctx, n);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<UpTxDone>() {
            Ok(u) => {
                self.on_up_tx_done(ctx, u.node);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<SwArrive<P>>() {
            Ok(a) => {
                self.on_sw_arrive(ctx, a.pkt);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<DownTxDone>() {
            Ok(d) => {
                self.on_down_tx_done(ctx, d.node);
                return;
            }
            Err(e) => e,
        };
        match ev.downcast::<GateWake>() {
            Ok(w) => {
                // An ingress gate released a credit; retry that downlink.
                self.try_start_downlink(ctx, w.token as NodeId);
            }
            Err(_) => panic!("fabric: unknown event type"),
        }
    }

    fn name(&self) -> String {
        "fabric".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::time::Time;

    #[derive(Clone, Debug)]
    struct Raw(u32);
    impl Payload for Raw {
        fn wire_bytes(&self) -> u32 {
            self.0
        }
    }

    /// Sink NIC: consumes packets *serially*, holding each ingress credit
    /// for `consume` time, so it models a processing-rate-limited receiver.
    struct Sink {
        port: Option<NodePort>,
        consume: Dur,
        backlog: u32,
        busy: bool,
        log: Rc<RefCell<Vec<(u64, u32)>>>,
    }
    struct ConsumeDone;
    impl Sink {
        fn try_consume(&mut self, ctx: &mut Ctx<'_>) {
            if !self.busy && self.backlog > 0 {
                self.busy = true;
                self.backlog -= 1;
                ctx.schedule_self(self.consume, Box::new(ConsumeDone));
            }
        }
    }
    impl Component for Sink {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
            let ev = match ev.downcast::<Arrive<Raw>>() {
                Ok(a) => {
                    self.log
                        .borrow_mut()
                        .push((ctx.now().ps(), a.pkt.wire_bytes()));
                    self.backlog += 1;
                    self.try_consume(ctx);
                    return;
                }
                Err(e) => e,
            };
            if ev.downcast::<ConsumeDone>().is_ok() {
                self.busy = false;
                let port = self.port.as_ref().unwrap().clone();
                port.ingress_gate.borrow_mut().release(ctx);
                self.try_consume(ctx);
            }
        }
    }

    /// Source NIC: sends `n` packets of `size` bytes as fast as credits allow.
    struct Source {
        port: Option<NodePort>,
        dst: NodeId,
        remaining: u32,
        size: u32,
    }
    struct Kick;
    impl Source {
        fn pump(&mut self, ctx: &mut Ctx<'_>) {
            while self.remaining > 0 {
                let port = self.port.as_ref().unwrap();
                let pkt = NetPacket::new(port.node, self.dst, Raw(self.size));
                if port.try_submit(ctx, pkt) {
                    self.remaining -= 1;
                } else {
                    let id = ctx.self_id;
                    port.egress_gate.borrow_mut().register_waiter(id, 0);
                    break;
                }
            }
        }
    }
    impl Component for Source {
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Box<dyn Any>) {
            self.pump(ctx); // Kick and GateWake both just pump.
        }
    }

    #[allow(clippy::type_complexity)]
    fn build(
        consume: Dur,
        n_pkts: u32,
        size: u32,
        cfg: FabricConfig,
    ) -> (
        Engine,
        Rc<RefCell<Vec<(u64, u32)>>>,
        Rc<RefCell<FabricStats>>,
    ) {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(vec![]));
        let fid = e.reserve_id();
        let src_id = e.reserve_id();
        let snk_id = e.reserve_id();
        let mut fab: Fabric<Raw> = Fabric::new(cfg, fid);
        let sport = fab.register_node(src_id, None);
        let dport = fab.register_node(snk_id, None);
        let stats = fab.stats();
        e.install(fid, Box::new(fab));
        e.install(
            src_id,
            Box::new(Source {
                dst: dport.node,
                port: Some(sport),
                remaining: n_pkts,
                size,
            }),
        );
        e.install(
            snk_id,
            Box::new(Sink {
                port: Some(dport),
                consume,
                backlog: 0,
                busy: false,
                log: log.clone(),
            }),
        );
        e.schedule(Dur::ZERO, src_id, Box::new(Kick));
        (e, log, stats)
    }

    #[test]
    fn single_packet_end_to_end_latency() {
        let cfg = FabricConfig::default();
        let (mut e, log, _) = build(Dur::ZERO, 1, 2048, cfg.clone());
        e.run_to_completion();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        // serialize(2048B@400G)=40.96ns + link 20 + switch 100
        // + serialize 40.96 + link 20 = 221.92 ns
        let expect = cfg.link_bw.tx_time(2048) * 2 + cfg.link_latency * 2 + cfg.switch_delay;
        assert_eq!(log[0].0, expect.ps());
    }

    #[test]
    fn back_to_back_packets_arrive_at_line_rate() {
        let (mut e, log, _) = build(Dur::ZERO, 100, 2048, FabricConfig::default());
        e.run_to_completion();
        let log = log.borrow();
        assert_eq!(log.len(), 100);
        // Steady state: one packet per serialization time (40.96 ns).
        let gaps: Vec<u64> = log.windows(2).map(|w| w[1].0 - w[0].0).collect();
        assert!(gaps.iter().all(|&g| g == 40_960), "{gaps:?}");
    }

    #[test]
    fn slow_consumer_throttles_sender_without_loss() {
        // Consumer takes 10x the serialization time per packet.
        let (mut e, log, stats) = build(Dur::from_ps(409_600), 64, 2048, FabricConfig::default());
        e.run_to_completion();
        let log = log.borrow();
        assert_eq!(log.len(), 64, "lossless: every packet must arrive");
        // Arrival rate must eventually degrade to the consume rate.
        let tail: Vec<u64> = log[40..].windows(2).map(|w| w[1].0 - w[0].0).collect();
        assert!(
            tail.iter().all(|&g| g >= 409_600),
            "tail gaps show backpressure: {tail:?}"
        );
        assert_eq!(stats.borrow().per_node[1].rx_pkts, 64);
    }

    #[test]
    fn stats_count_bytes() {
        let (mut e, _, stats) = build(Dur::ZERO, 10, 1000, FabricConfig::default());
        e.run_to_completion();
        let st = stats.borrow();
        assert_eq!(st.per_node[0].tx_pkts, 10);
        assert_eq!(st.per_node[0].tx_bytes, 10_000);
        assert_eq!(st.per_node[1].rx_bytes, 10_000);
    }

    #[test]
    fn two_senders_share_one_destination_fairly_enough() {
        // Both sources target node 2; aggregated arrival rate is line rate.
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(vec![]));
        let fid = e.reserve_id();
        let s1 = e.reserve_id();
        let s2 = e.reserve_id();
        let snk = e.reserve_id();
        let mut fab: Fabric<Raw> = Fabric::new(FabricConfig::default(), fid);
        let p1 = fab.register_node(s1, None);
        let p2 = fab.register_node(s2, None);
        let pd = fab.register_node(snk, None);
        e.install(fid, Box::new(fab));
        let dst = pd.node;
        e.install(
            s1,
            Box::new(Source {
                dst,
                port: Some(p1),
                remaining: 50,
                size: 2048,
            }),
        );
        e.install(
            s2,
            Box::new(Source {
                dst,
                port: Some(p2),
                remaining: 50,
                size: 2048,
            }),
        );
        e.install(
            snk,
            Box::new(Sink {
                port: Some(pd),
                consume: Dur::ZERO,
                backlog: 0,
                busy: false,
                log: log.clone(),
            }),
        );
        e.schedule(Dur::ZERO, s1, Box::new(Kick));
        e.schedule(Dur::ZERO, s2, Box::new(Kick));
        e.run_to_completion();
        assert_eq!(log.borrow().len(), 100);
        // Delivery is serialized by the shared downlink: gaps ≥ one
        // serialization time each.
        let l = log.borrow();
        let gaps: Vec<u64> = l.windows(2).map(|w| w[1].0 - w[0].0).collect();
        assert!(gaps.iter().all(|&g| g >= 40_960), "{gaps:?}");
        assert!(e.now() >= Time(100 * 40_960));
    }
}
