//! Lightweight event tracing: a bounded ring of timestamped annotations
//! shared across components, for debugging simulations and for tests that
//! assert on event interleavings.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::packet::NodeId;
use crate::time::Time;

/// One trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    pub at: Time,
    /// Component or subsystem that emitted the record.
    pub who: &'static str,
    /// Node instance for per-node subsystems (`nic`, `storage`); exports
    /// render `who-node` as the track name.
    pub node: Option<NodeId>,
    pub what: String,
}

/// A bounded, shareable trace sink. Disabled traces cost one branch.
pub struct Trace {
    enabled: bool,
    cap: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

pub type SharedTrace = Rc<RefCell<Trace>>;

impl Trace {
    /// An enabled trace retaining the most recent `cap` entries.
    pub fn new(cap: usize) -> SharedTrace {
        Rc::new(RefCell::new(Trace {
            enabled: true,
            cap: cap.max(1),
            entries: VecDeque::new(),
            dropped: 0,
        }))
    }

    /// A disabled trace (records nothing, cheap to pass around).
    pub fn disabled() -> SharedTrace {
        Rc::new(RefCell::new(Trace {
            enabled: false,
            cap: 1,
            entries: VecDeque::new(),
            dropped: 0,
        }))
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Eager emit. Prefer [`Trace::emit_with`] on hot paths: this variant
    /// makes the caller build `what` even when the trace is disabled.
    pub fn emit(&mut self, at: Time, who: &'static str, what: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.push(at, who, None, what.into());
    }

    /// Lazy emit: `what` is only built when the trace is enabled, so a
    /// disabled trace costs one branch and zero allocations at call sites.
    pub fn emit_with<F: FnOnce() -> String>(&mut self, at: Time, who: &'static str, what: F) {
        if !self.enabled {
            return;
        }
        self.push(at, who, None, what());
    }

    /// Lazy emit attributed to a specific node instance (renders on the
    /// `who-node` track in exports).
    pub fn emit_from<F: FnOnce() -> String>(
        &mut self,
        at: Time,
        who: &'static str,
        node: Option<NodeId>,
        what: F,
    ) {
        if !self.enabled {
            return;
        }
        self.push(at, who, node, what());
    }

    fn push(&mut self, at: Time, who: &'static str, node: Option<NodeId>, what: String) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            who,
            node,
            what,
        });
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries oldest-first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as one line per record.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "[{:>14}] {:<12} {}\n",
                format!("{}", e.at),
                e.who,
                e.what
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("  ({} earlier records dropped)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let t = Trace::new(10);
        t.borrow_mut().emit(Time(100), "nic-0", "tx pkt 1");
        t.borrow_mut().emit(Time(200), "fabric", "deliver");
        let tr = t.borrow();
        let v: Vec<_> = tr.entries().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].who, "nic-0");
        assert_eq!(v[1].at, Time(200));
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let t = Trace::new(3);
        for i in 0..5 {
            t.borrow_mut().emit(Time(i), "x", format!("e{i}"));
        }
        let tr = t.borrow();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        assert_eq!(tr.entries().next().expect("entry").what, "e2");
        assert!(tr.render().contains("2 earlier records dropped"));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        t.borrow_mut().emit(Time(1), "x", "ignored");
        assert!(t.borrow().is_empty());
    }

    #[test]
    fn emit_with_is_lazy_when_disabled() {
        let t = Trace::disabled();
        let mut built = false;
        t.borrow_mut().emit_with(Time(1), "x", || {
            built = true;
            "never".to_owned()
        });
        assert!(!built, "closure must not run when trace is disabled");
        assert!(t.borrow().is_empty());

        let t = Trace::new(4);
        t.borrow_mut()
            .emit_from(Time(2), "nic", Some(3), || "tx".to_owned());
        let tr = t.borrow();
        let e = tr.entries().next().expect("entry");
        assert_eq!(e.node, Some(3));
        assert_eq!(e.who, "nic");
    }
}
