//! Credit-based send/recv flow control and multi-tenant fair queueing.
//!
//! The credit discipline follows the production RDMA pattern (SF-Zhou's
//! send/recv-control series): every queue pair gets a bounded send-WR
//! budget split per WR class, the receiver's recv queue is sized to the
//! sum of the classes that consume recv buffers (data sends and
//! immediates), and credit returns ride existing completion traffic as a
//! piggybacked `(data, imm)` grant — with a standalone credit message
//! only when the receiver has absorbed half its recv capacity without a
//! chance to piggyback.
//!
//! A work request may be posted only when *both* sides have room:
//!
//! ```text
//!   submit ──► local send-queue credit?  ──no──► pending-WR queue
//!                 │ yes                               ▲
//!                 ▼                                   │ released when
//!   (Data/Imm) remote recv credit?      ──no──────────┤ credit returns
//!                 │ yes                               │
//!                 ▼                                   │
//!   post to wire; local credit returns at WR         │
//!   completion, remote credit on Ack(a,b) grant ─────┘
//! ```
//!
//! [`TenantScheduler`] adds the fairness layer on top: a deficit
//! round-robin scheduler over per-tenant FIFO queues, so one hot tenant
//! cannot starve the rest of a shared service point (a storage node's
//! host CPU, a NIC's read-responder slots).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use crate::packet::NodeId;

/// Work-request classes with separate send budgets (split `max_send_wr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WrClass {
    /// Two-sided data send (consumes a recv WR on the peer).
    Data,
    /// Immediate/control send (also consumes a peer recv WR).
    Imm,
    /// One-sided RDMA read request.
    Read,
    /// One-sided RDMA write.
    Write,
}

impl WrClass {
    pub const ALL: [WrClass; 4] = [WrClass::Data, WrClass::Imm, WrClass::Read, WrClass::Write];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            WrClass::Data => 0,
            WrClass::Imm => 1,
            WrClass::Read => 2,
            WrClass::Write => 3,
        }
    }

    /// Whether posting this class consumes a recv WR (and therefore
    /// remote credit) on the peer. One-sided reads and writes are handled
    /// entirely by the peer's hardware and need no posted recv buffer.
    #[inline]
    pub fn consumes_remote(self) -> bool {
        matches!(self, WrClass::Data | WrClass::Imm)
    }

    pub fn as_str(self) -> &'static str {
        match self {
            WrClass::Data => "data",
            WrClass::Imm => "imm",
            WrClass::Read => "read",
            WrClass::Write => "write",
        }
    }
}

/// Per-class send-WR budgets for one queue pair. The recv queue is sized
/// to `max_recv_wr()` — every data/immediate send the peers can have in
/// flight finds a posted buffer, which is what makes a pure credit-return
/// message safe to send without consuming credit itself.
#[derive(Clone, Copy, Debug)]
pub struct CreditConfig {
    pub max_send_data: u16,
    pub max_send_imm: u16,
    pub max_send_read: u16,
    pub max_send_write: u16,
}

impl Default for CreditConfig {
    /// Budgets sized so a single well-behaved client never stalls; the
    /// interesting regime is many peers contending for one node.
    fn default() -> CreditConfig {
        CreditConfig {
            max_send_data: 64,
            max_send_imm: 64,
            max_send_read: 128,
            max_send_write: 128,
        }
    }
}

impl CreditConfig {
    pub fn max_for(&self, class: WrClass) -> u16 {
        match class {
            WrClass::Data => self.max_send_data,
            WrClass::Imm => self.max_send_imm,
            WrClass::Read => self.max_send_read,
            WrClass::Write => self.max_send_write,
        }
    }

    /// Recv-queue depth: one posted buffer per possible in-flight
    /// data/immediate send from the peer.
    pub fn max_recv_wr(&self) -> u32 {
        self.max_send_data as u32 + self.max_send_imm as u32
    }

    /// Consumed-recv threshold past which the receiver stops waiting for
    /// a piggyback opportunity and returns credit in a standalone ack.
    pub fn ack_threshold(&self, class: WrClass) -> u16 {
        (self.max_for(class) / 2).max(1)
    }
}

/// A credit return: recv WRs the sender of the grant has reposted, split
/// by the class that consumed them. Rides piggybacked on ack frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CreditGrant {
    pub data: u16,
    pub imm: u16,
}

impl CreditGrant {
    pub const ZERO: CreditGrant = CreditGrant { data: 0, imm: 0 };

    pub fn is_zero(&self) -> bool {
        self.data == 0 && self.imm == 0
    }
}

/// Credit state against one peer.
#[derive(Clone, Copy, Debug)]
struct PeerCredit {
    /// Remaining local send-queue slots per class.
    local: [u16; 4],
    /// Remaining recv credit on the peer, `[data, imm]`.
    remote: [u16; 2],
    /// Recv completions absorbed but not yet granted back, `[data, imm]`.
    recv_pending: [u16; 2],
}

impl PeerCredit {
    fn fresh(cfg: &CreditConfig) -> PeerCredit {
        PeerCredit {
            local: [
                cfg.max_send_data,
                cfg.max_send_imm,
                cfg.max_send_read,
                cfg.max_send_write,
            ],
            remote: [cfg.max_send_data, cfg.max_send_imm],
            recv_pending: [0, 0],
        }
    }
}

/// Counters for the credit layer, shared with the metrics registry (the
/// NIC owning the controller is consumed by the engine at cluster build).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowStats {
    /// WRs admitted per class (credit acquired).
    pub posted: [u64; 4],
    /// WRs that found no credit and went to the pending queue.
    pub queued: u64,
    /// Queued WRs later released by returning credit.
    pub released: u64,
    /// Admission failures due to exhausted local send credit.
    pub local_stalls: u64,
    /// Admission failures due to exhausted remote recv credit.
    pub remote_stalls: u64,
    /// WR completions that returned local credit, per class.
    pub completed: [u64; 4],
    /// Credit units granted to peers on piggybacked acks.
    pub granted_piggyback: u64,
    /// Credit units granted to peers in standalone credit acks.
    pub granted_standalone: u64,
    /// Credit units received back from peers.
    pub grants_received: u64,
}

pub type SharedFlowStats = Rc<RefCell<FlowStats>>;

/// Shared per-tenant service ledgers of one [`TenantScheduler`].
pub type SharedTenantLedgers = Rc<RefCell<BTreeMap<TenantId, TenantLedger>>>;

/// Per-peer credit accounting for every queue pair of one node.
///
/// The controller is pure bookkeeping — it never touches the wire. The
/// owner asks [`FlowController::try_acquire`] before posting, queues the
/// WR itself when refused, returns local credit with
/// [`FlowController::on_local_complete`], and moves grants between peers
/// with [`FlowController::take_grant`] / [`FlowController::on_grant`].
pub struct FlowController {
    cfg: CreditConfig,
    peers: BTreeMap<NodeId, PeerCredit>,
    stats: SharedFlowStats,
}

impl FlowController {
    pub fn new(cfg: CreditConfig) -> FlowController {
        FlowController {
            cfg,
            peers: BTreeMap::new(),
            stats: Rc::new(RefCell::new(FlowStats::default())),
        }
    }

    pub fn config(&self) -> &CreditConfig {
        &self.cfg
    }

    /// Shared handle to the counters (for metrics registration).
    pub fn stats_handle(&self) -> SharedFlowStats {
        self.stats.clone()
    }

    fn peer(&mut self, peer: NodeId) -> &mut PeerCredit {
        let cfg = &self.cfg;
        self.peers
            .entry(peer)
            .or_insert_with(|| PeerCredit::fresh(cfg))
    }

    /// Whether a WR of `class` to `peer` could be posted right now
    /// (non-consuming check, used when draining the pending queue).
    pub fn can_post(&mut self, peer: NodeId, class: WrClass) -> bool {
        let p = self.peer(peer);
        p.local[class.index()] > 0 && (!class.consumes_remote() || p.remote[class.index()] > 0)
    }

    /// Try to consume one local (and, for data/imm, one remote) credit
    /// for a WR of `class` to `peer`. On `false` nothing was consumed —
    /// the caller must queue the WR and retry when credit returns.
    pub fn try_acquire(&mut self, peer: NodeId, class: WrClass) -> bool {
        let p = self.peer(peer);
        let i = class.index();
        if p.local[i] == 0 {
            self.stats.borrow_mut().local_stalls += 1;
            return false;
        }
        if class.consumes_remote() && p.remote[i] == 0 {
            self.stats.borrow_mut().remote_stalls += 1;
            return false;
        }
        p.local[i] -= 1;
        if class.consumes_remote() {
            p.remote[i] -= 1;
        }
        self.stats.borrow_mut().posted[i] += 1;
        true
    }

    /// A posted WR of `class` to `peer` completed: its send-queue slot is
    /// free again. Saturates at the configured budget (double completions
    /// cannot mint credit).
    pub fn on_local_complete(&mut self, peer: NodeId, class: WrClass) {
        let max = self.cfg.max_for(class);
        let p = self.peer(peer);
        let i = class.index();
        if p.local[i] < max {
            p.local[i] += 1;
            self.stats.borrow_mut().completed[i] += 1;
        }
    }

    /// A data/imm message from `peer` was absorbed and its recv buffer
    /// reposted. Returns `true` when the pending return crossed the
    /// standalone-ack threshold — the caller should flush a credit ack
    /// now rather than wait for a piggyback opportunity.
    pub fn on_recv(&mut self, peer: NodeId, class: WrClass) -> bool {
        if !class.consumes_remote() {
            return false;
        }
        let threshold = self.cfg.ack_threshold(class);
        let p = self.peer(peer);
        let i = class.index();
        p.recv_pending[i] = p.recv_pending[i].saturating_add(1);
        p.recv_pending[i] >= threshold
    }

    /// Drain the pending credit return for `peer` into a grant to ship
    /// (piggybacked on a protocol ack or in a standalone credit ack).
    pub fn take_grant(&mut self, peer: NodeId, standalone: bool) -> CreditGrant {
        let p = self.peer(peer);
        let g = CreditGrant {
            data: p.recv_pending[0],
            imm: p.recv_pending[1],
        };
        p.recv_pending = [0, 0];
        if !g.is_zero() {
            let units = g.data as u64 + g.imm as u64;
            let mut s = self.stats.borrow_mut();
            if standalone {
                s.granted_standalone += units;
            } else {
                s.granted_piggyback += units;
            }
        }
        g
    }

    /// Apply a grant received from `peer`: its recv queue has room again.
    /// Saturates at the configured budget.
    pub fn on_grant(&mut self, peer: NodeId, grant: CreditGrant) {
        if grant.is_zero() {
            return;
        }
        let max = [self.cfg.max_send_data, self.cfg.max_send_imm];
        let p = self.peer(peer);
        p.remote[0] = p.remote[0].saturating_add(grant.data).min(max[0]);
        p.remote[1] = p.remote[1].saturating_add(grant.imm).min(max[1]);
        self.stats.borrow_mut().grants_received += grant.data as u64 + grant.imm as u64;
    }

    /// Remaining local send credit toward `peer` (diagnostics/tests).
    pub fn local_credit(&self, peer: NodeId, class: WrClass) -> u16 {
        self.peers
            .get(&peer)
            .map_or(self.cfg.max_for(class), |p| p.local[class.index()])
    }

    /// Remaining remote recv credit toward `peer` (diagnostics/tests).
    pub fn remote_credit(&self, peer: NodeId, class: WrClass) -> u16 {
        if !class.consumes_remote() {
            return u16::MAX;
        }
        self.peers
            .get(&peer)
            .map_or(self.cfg.max_for(class), |p| p.remote[class.index()])
    }

    /// Recv completions not yet granted back to `peer` (tests).
    pub fn pending_grant(&self, peer: NodeId) -> CreditGrant {
        self.peers
            .get(&peer)
            .map_or(CreditGrant::ZERO, |p| CreditGrant {
                data: p.recv_pending[0],
                imm: p.recv_pending[1],
            })
    }

    /// Count a queued WR (the owner holds the queue itself).
    pub fn note_queued(&mut self) {
        self.stats.borrow_mut().queued += 1;
    }

    /// Count a queued WR released by returning credit.
    pub fn note_released(&mut self) {
        self.stats.borrow_mut().released += 1;
    }
}

// --- tenant fair queueing -----------------------------------------------

/// Tenant id carried in DFS headers. Tenants are scheduling principals:
/// by default every client is its own tenant (its node id), and
/// background services get reserved ids.
pub type TenantId = u16;

/// Reserved tenant for background repair traffic (scheduled at low
/// weight so drains cannot starve foreground I/O).
pub const TENANT_REPAIR: TenantId = 0xFFFF;

/// Per-tenant service counters at one scheduling point.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantLedger {
    /// Work items enqueued for this tenant.
    pub enqueued: u64,
    /// Work items dispatched into service.
    pub dispatched: u64,
    /// Cost units (bytes) dispatched.
    pub cost_dispatched: u64,
    /// Items that found the service point busy and waited in the queue.
    pub queued: u64,
}

/// Deficit round-robin scheduler over per-tenant FIFO queues.
///
/// Each visit tops a tenant's deficit counter up by `quantum × weight`;
/// an item dispatches when its cost fits the deficit. Per-tenant order
/// is FIFO (protocols that rely on in-order chunk arrival keep working);
/// across tenants, throughput converges to the weight ratio regardless
/// of who floods the queue.
pub struct TenantScheduler<T> {
    quantum: u64,
    default_weight: u32,
    weights: BTreeMap<TenantId, u32>,
    queues: BTreeMap<TenantId, VecDeque<(u64, T)>>,
    deficit: BTreeMap<TenantId, u64>,
    /// Active-tenant ring (tenants with a nonempty queue), DRR order.
    ring: VecDeque<TenantId>,
    len: usize,
    /// Service accounting per tenant, exported by the metrics snapshot
    /// (shared: the scheduler's owner is consumed by the engine at
    /// cluster build, snapshot code holds this handle).
    ledgers: SharedTenantLedgers,
}

impl<T> TenantScheduler<T> {
    /// `quantum` is the per-visit deficit refill in cost units (bytes)
    /// for weight 1; `default_weight` applies to tenants without an
    /// explicit override.
    pub fn new(quantum: u64, default_weight: u32) -> TenantScheduler<T> {
        TenantScheduler {
            quantum: quantum.max(1),
            default_weight: default_weight.max(1),
            weights: BTreeMap::new(),
            queues: BTreeMap::new(),
            deficit: BTreeMap::new(),
            ring: VecDeque::new(),
            len: 0,
            ledgers: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    pub fn set_weight(&mut self, tenant: TenantId, weight: u32) {
        self.weights.insert(tenant, weight.max(1));
    }

    pub fn weight(&self, tenant: TenantId) -> u32 {
        self.weights
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_weight)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue a work item of `cost` units for `tenant`.
    pub fn push(&mut self, tenant: TenantId, cost: u64, item: T) {
        let q = self.queues.entry(tenant).or_default();
        if q.is_empty() {
            // (Re)activating: joins the ring with a fresh deficit, so an
            // idle tenant cannot bank credit while away.
            self.ring.push_back(tenant);
            self.deficit.insert(tenant, 0);
        }
        q.push_back((cost, item));
        self.len += 1;
        let mut ledgers = self.ledgers.borrow_mut();
        let l = ledgers.entry(tenant).or_default();
        l.enqueued += 1;
        l.queued += 1;
    }

    /// Dispatch the next item by deficit round-robin. `None` iff empty.
    pub fn pop(&mut self) -> Option<(TenantId, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let t = *self.ring.front().expect("nonempty scheduler has a ring");
            let w = self.weight(t) as u64;
            let q = self.queues.get_mut(&t).expect("ring tenant has a queue");
            let cost = q.front().expect("ring tenant queue nonempty").0;
            let d = self.deficit.entry(t).or_insert(0);
            if *d >= cost {
                *d -= cost;
                let (cost, item) = q.pop_front().expect("checked front");
                if q.is_empty() {
                    self.queues.remove(&t);
                    self.deficit.remove(&t);
                    self.ring.pop_front();
                }
                self.len -= 1;
                let mut ledgers = self.ledgers.borrow_mut();
                let l = ledgers.entry(t).or_default();
                l.dispatched += 1;
                l.cost_dispatched += cost;
                return Some((t, item));
            }
            // Deficit grows by ≥ quantum per visit, so any head item is
            // reached in ≤ cost/quantum rotations: the loop terminates.
            *d += self.quantum * w;
            self.ring.rotate_left(1);
        }
    }

    /// Shared handle to the per-tenant service ledgers.
    pub fn ledgers_handle(&self) -> SharedTenantLedgers {
        self.ledgers.clone()
    }

    /// This tenant's service ledger so far (zero if never seen).
    pub fn ledger(&self, tenant: TenantId) -> TenantLedger {
        self.ledgers
            .borrow()
            .get(&tenant)
            .copied()
            .unwrap_or_default()
    }

    /// Items currently queued for `tenant`.
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.queues.get(&tenant).map_or(0, VecDeque::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_consumes_and_complete_returns() {
        let mut f = FlowController::new(CreditConfig {
            max_send_data: 2,
            max_send_imm: 1,
            max_send_read: 1,
            max_send_write: 1,
        });
        assert!(f.try_acquire(5, WrClass::Data));
        assert!(f.try_acquire(5, WrClass::Data));
        assert_eq!(f.local_credit(5, WrClass::Data), 0);
        assert!(!f.try_acquire(5, WrClass::Data), "budget exhausted");
        f.on_local_complete(5, WrClass::Data);
        assert_eq!(f.local_credit(5, WrClass::Data), 1);
        // Local slot is back but the peer's recv credit is still spent.
        assert_eq!(f.remote_credit(5, WrClass::Data), 0);
        assert!(!f.try_acquire(5, WrClass::Data));
        f.on_grant(5, CreditGrant { data: 1, imm: 0 });
        assert!(f.try_acquire(5, WrClass::Data));
    }

    #[test]
    fn one_sided_classes_skip_remote_credit() {
        let mut f = FlowController::new(CreditConfig {
            max_send_data: 1,
            max_send_imm: 1,
            max_send_read: 2,
            max_send_write: 2,
        });
        assert!(f.try_acquire(9, WrClass::Write));
        assert!(f.try_acquire(9, WrClass::Write));
        assert!(!f.try_acquire(9, WrClass::Write));
        // No grant needed: completion alone restores a write slot.
        f.on_local_complete(9, WrClass::Write);
        assert!(f.try_acquire(9, WrClass::Write));
    }

    #[test]
    fn credits_saturate_at_budget() {
        let mut f = FlowController::new(CreditConfig {
            max_send_data: 2,
            max_send_imm: 2,
            max_send_read: 2,
            max_send_write: 2,
        });
        // Spurious completions and over-grants cannot mint credit.
        f.on_local_complete(1, WrClass::Data);
        f.on_grant(
            1,
            CreditGrant {
                data: 100,
                imm: 100,
            },
        );
        assert_eq!(f.local_credit(1, WrClass::Data), 2);
        assert_eq!(f.remote_credit(1, WrClass::Data), 2);
    }

    #[test]
    fn recv_threshold_triggers_standalone_grant() {
        let cfg = CreditConfig {
            max_send_data: 4,
            max_send_imm: 4,
            max_send_read: 1,
            max_send_write: 1,
        };
        let mut f = FlowController::new(cfg);
        assert!(!f.on_recv(3, WrClass::Data));
        assert!(f.on_recv(3, WrClass::Data), "half capacity crossed");
        let g = f.take_grant(3, true);
        assert_eq!(g, CreditGrant { data: 2, imm: 0 });
        assert!(f.take_grant(3, true).is_zero(), "drained");
        // One-sided traffic never accrues grants.
        assert!(!f.on_recv(3, WrClass::Write));
        assert!(f.take_grant(3, true).is_zero());
    }

    #[test]
    fn peers_are_independent() {
        let mut f = FlowController::new(CreditConfig {
            max_send_data: 1,
            max_send_imm: 1,
            max_send_read: 1,
            max_send_write: 1,
        });
        assert!(f.try_acquire(1, WrClass::Data));
        assert!(f.try_acquire(2, WrClass::Data), "peer 2 unaffected");
        assert!(!f.try_acquire(1, WrClass::Data));
    }

    #[test]
    fn drr_respects_weights() {
        let mut s: TenantScheduler<u32> = TenantScheduler::new(1024, 1);
        s.set_weight(7, 3);
        // Two tenants flood equally with unit-cost items.
        for i in 0..100 {
            s.push(7, 1024, i);
            s.push(8, 1024, i);
        }
        let mut got = [0u32; 2];
        for _ in 0..40 {
            let (t, _) = s.pop().expect("items queued");
            got[if t == 7 { 0 } else { 1 }] += 1;
        }
        // Weight 3 tenant gets ~3x the service of weight 1.
        assert_eq!(got[0] + got[1], 40);
        assert!(
            got[0] >= 28 && got[0] <= 32,
            "weighted share off: {got:?} (expected ~30/10)"
        );
    }

    #[test]
    fn drr_is_fifo_within_a_tenant_and_drains_fully() {
        let mut s: TenantScheduler<u32> = TenantScheduler::new(64, 1);
        for i in 0..10 {
            s.push(1, 64, i);
        }
        s.push(2, 4096, 100); // expensive item still dispatches
        let mut seen1 = Vec::new();
        let mut total = 0;
        while let Some((t, v)) = s.pop() {
            total += 1;
            if t == 1 {
                seen1.push(v);
            }
        }
        assert_eq!(total, 11);
        assert_eq!(seen1, (0..10).collect::<Vec<_>>());
        assert!(s.is_empty());
        assert_eq!(s.ledger(1).dispatched, 10);
        assert_eq!(s.ledger(2).cost_dispatched, 4096);
    }

    #[test]
    fn idle_tenant_does_not_bank_deficit() {
        let mut s: TenantScheduler<u32> = TenantScheduler::new(10, 1);
        s.push(1, 10, 0);
        assert!(s.pop().is_some());
        // Tenant 1 left the ring; rejoining starts from deficit 0, so a
        // long absence earns nothing.
        s.push(2, 10, 0);
        s.push(1, 10, 1);
        let order: Vec<TenantId> = std::iter::from_fn(|| s.pop().map(|(t, _)| t)).collect();
        assert_eq!(order.len(), 2);
        assert_eq!(s.ledger(1).dispatched, 2);
    }
}
