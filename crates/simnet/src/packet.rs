//! Generic network packets carried by the [`crate::fabric::Fabric`].

/// Payload carried inside a simulated network packet.
///
/// The simulator is generic over the payload so that the wire format lives in
/// a higher-level crate; the only thing the network needs is the on-wire size.
pub trait Payload: Clone + std::fmt::Debug + 'static {
    /// Total bytes this packet occupies on the wire (headers + data).
    fn wire_bytes(&self) -> u32;
}

/// Node address on the fabric.
pub type NodeId = usize;

/// A packet in flight between two nodes.
#[derive(Clone, Debug)]
pub struct NetPacket<P: Payload> {
    pub src: NodeId,
    pub dst: NodeId,
    pub payload: P,
}

impl<P: Payload> NetPacket<P> {
    pub fn new(src: NodeId, dst: NodeId, payload: P) -> Self {
        NetPacket { src, dst, payload }
    }

    #[inline]
    pub fn wire_bytes(&self) -> u32 {
        self.payload.wire_bytes()
    }
}

/// Event delivered to a node's registered component when a packet has fully
/// arrived at its NIC ingress.
#[derive(Debug)]
pub struct Arrive<P: Payload> {
    pub pkt: NetPacket<P>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Blob(u32);
    impl Payload for Blob {
        fn wire_bytes(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn packet_reports_payload_size() {
        let p = NetPacket::new(0, 1, Blob(2048));
        assert_eq!(p.wire_bytes(), 2048);
        assert_eq!(p.src, 0);
        assert_eq!(p.dst, 1);
    }
}
