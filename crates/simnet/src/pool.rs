//! Recycled, length-tracked byte buffers for packet payloads.
//!
//! The streaming EC data path touches a buffer per packet (intermediate
//! parities, aggregation accumulators, DMA staging). Allocating each one
//! fresh puts the allocator on the per-packet critical path; a real NIC
//! instead cycles a fixed ring of buffers. [`BufPool`] models that
//! discipline: `get` hands out a zeroed buffer (reusing a retired
//! allocation when one is available), `put` retires a buffer for reuse.
//! Hit/miss counters make the steady-state allocation rate observable —
//! the `ec_throughput` benchmark asserts it reaches zero.
//!
//! The pool is deliberately dumb about sizing: any retired buffer whose
//! *capacity* covers a request can serve it (`get` length-tracks via
//! `Vec::resize`), so one pool serves mixed packet sizes (full MTU
//! payloads plus ragged tails).

use std::cell::RefCell;
use std::rc::Rc;

/// Counters exposed for benchmarks and diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Buffers handed out.
    pub gets: u64,
    /// Handed out from the free list (no allocation).
    pub hits: u64,
    /// Handed out by allocating fresh (the free list was empty or too
    /// small).
    pub misses: u64,
    /// Buffers returned.
    pub puts: u64,
    /// Returned buffers dropped because the pool was at capacity.
    pub dropped: u64,
}

impl PoolStats {
    /// Fraction of `get`s served without allocating.
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            return 1.0;
        }
        self.hits as f64 / self.gets as f64
    }
}

/// Default cap on bytes retained per pool: enough for a deep ring of
/// chunk-sized staging buffers without letting recycled whole-block
/// payloads (which can be many MiB each) accumulate without bound.
pub const DEFAULT_MAX_RETAINED_BYTES: usize = 16 << 20;

/// A pool of recycled byte buffers. Single-threaded (the simulator is a
/// single-threaded event loop); share it as a [`SharedBufPool`].
///
/// The free list is kept sorted by capacity, so `get` is a binary search
/// (best fit) rather than a scan — it sits on the per-packet path.
#[derive(Debug)]
pub struct BufPool {
    /// Free buffers, sorted by ascending capacity.
    free: Vec<Vec<u8>>,
    /// Maximum retired buffers retained; beyond this, `put` drops.
    max_retained: usize,
    /// Maximum total capacity retained (bounds memory when block-sized
    /// payloads recycle through a ring sized in buffer counts).
    max_retained_bytes: usize,
    /// Total capacity currently on the free list.
    retained_bytes: usize,
    stats: PoolStats,
}

/// Shared handle; one per NIC (or per benchmark loop).
pub type SharedBufPool = Rc<RefCell<BufPool>>;

impl BufPool {
    /// New pool retaining at most `max_retained` free buffers and
    /// [`DEFAULT_MAX_RETAINED_BYTES`] of capacity.
    pub fn new(max_retained: usize) -> BufPool {
        BufPool::with_byte_cap(max_retained, DEFAULT_MAX_RETAINED_BYTES)
    }

    /// New pool with an explicit retained-capacity budget.
    pub fn with_byte_cap(max_retained: usize, max_retained_bytes: usize) -> BufPool {
        BufPool {
            free: Vec::new(),
            max_retained,
            max_retained_bytes,
            retained_bytes: 0,
            stats: PoolStats::default(),
        }
    }

    /// New pool behind a shared handle.
    pub fn shared(max_retained: usize) -> SharedBufPool {
        Rc::new(RefCell::new(BufPool::new(max_retained)))
    }

    /// Best-fit take: the smallest free buffer with capacity ≥ `len`
    /// (binary search on the sorted free list), so a handful of jumbo
    /// buffers don't get nibbled away by small requests.
    fn take_fit(&mut self, len: usize) -> Option<Vec<u8>> {
        let i = self.free.partition_point(|b| b.capacity() < len);
        if i == self.free.len() {
            return None;
        }
        let buf = self.free.remove(i);
        self.retained_bytes -= buf.capacity();
        Some(buf)
    }

    /// A zeroed buffer of exactly `len` bytes, recycled when possible.
    pub fn get(&mut self, len: usize) -> Vec<u8> {
        self.stats.gets += 1;
        match self.take_fit(len) {
            Some(mut buf) => {
                self.stats.hits += 1;
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.stats.misses += 1;
                vec![0u8; len]
            }
        }
    }

    /// A buffer of exactly `len` bytes with **unspecified contents** —
    /// for callers that overwrite every byte (e.g. a full-slice multiply
    /// or DMA read), skipping `get`'s zero fill on the hot path.
    pub fn get_dirty(&mut self, len: usize) -> Vec<u8> {
        self.stats.gets += 1;
        match self.take_fit(len) {
            Some(mut buf) => {
                self.stats.hits += 1;
                if buf.len() >= len {
                    buf.truncate(len);
                } else {
                    buf.resize(len, 0); // only the extension is filled
                }
                buf
            }
            None => {
                self.stats.misses += 1;
                vec![0u8; len]
            }
        }
    }

    /// An **empty** buffer with capacity ≥ `cap` — for callers that grow
    /// it incrementally (e.g. multi-packet message reassembly) and want
    /// the backing allocation recycled rather than fresh.
    pub fn get_spare(&mut self, cap: usize) -> Vec<u8> {
        self.stats.gets += 1;
        match self.take_fit(cap) {
            Some(mut buf) => {
                self.stats.hits += 1;
                buf.clear();
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::with_capacity(cap)
            }
        }
    }

    /// Retire a buffer for reuse. Zero-capacity buffers are dropped (there
    /// is nothing to reuse); beyond the count or byte budget the buffer is
    /// freed instead.
    pub fn put(&mut self, buf: Vec<u8>) {
        self.stats.puts += 1;
        if buf.capacity() == 0
            || self.free.len() >= self.max_retained
            || self.retained_bytes + buf.capacity() > self.max_retained_bytes
        {
            self.stats.dropped += 1;
            return;
        }
        self.retained_bytes += buf.capacity();
        let i = self.free.partition_point(|b| b.capacity() < buf.capacity());
        self.free.insert(i, buf);
    }

    /// Buffers currently available for reuse.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total capacity (bytes) currently retained on the free list.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Reset the counters (buffers stay pooled) — lets a benchmark measure
    /// the steady state separately from warmup.
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_cycle_reuses_allocation() {
        let mut p = BufPool::new(8);
        let a = p.get(100);
        assert_eq!(a.len(), 100);
        let ptr = a.as_ptr();
        p.put(a);
        let b = p.get(64);
        assert_eq!(b.len(), 64);
        assert_eq!(b.as_ptr(), ptr, "smaller request reuses the buffer");
        let s = p.stats();
        assert_eq!((s.gets, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn recycled_buffers_come_back_zeroed() {
        let mut p = BufPool::new(8);
        let mut a = p.get(16);
        a.fill(0xFF);
        p.put(a);
        let b = p.get(16);
        assert_eq!(b, vec![0u8; 16]);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut p = BufPool::new(8);
        let big = Vec::with_capacity(4096);
        let small = Vec::with_capacity(128);
        p.put(big);
        p.put(small);
        let b = p.get(64);
        assert!(b.capacity() < 4096, "small request must not take the jumbo");
        let j = p.get(2048);
        assert!(j.capacity() >= 4096, "jumbo still available for a big ask");
    }

    #[test]
    fn capacity_cap_drops_excess() {
        let mut p = BufPool::new(2);
        for _ in 0..4 {
            p.put(Vec::with_capacity(10));
        }
        assert_eq!(p.available(), 2);
        assert_eq!(p.stats().dropped, 2);
    }

    #[test]
    fn byte_budget_bounds_retained_memory() {
        let mut p = BufPool::with_byte_cap(256, 1000);
        p.put(Vec::with_capacity(600));
        p.put(Vec::with_capacity(600)); // would exceed 1000 retained bytes
        assert_eq!(p.available(), 1);
        assert_eq!(p.stats().dropped, 1);
        assert!(p.retained_bytes() <= 1000);
        // Draining the pool frees the budget again.
        let b = p.get(600);
        assert_eq!(p.retained_bytes(), 0);
        p.put(b);
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn get_dirty_skips_zeroing_but_tracks_length() {
        let mut p = BufPool::new(8);
        let mut a = p.get(32);
        a.fill(0xAB);
        p.put(a);
        let d = p.get_dirty(16);
        assert_eq!(d.len(), 16);
        assert_eq!(d, vec![0xAB; 16], "contents are unspecified, not zeroed");
        p.put(d);
        let grown = p.get_dirty(24);
        assert_eq!(grown.len(), 24);
        assert_eq!(&grown[..16], &[0xAB; 16][..]);
    }

    #[test]
    fn get_spare_returns_empty_recycled_capacity() {
        let mut p = BufPool::new(8);
        let mut a = p.get(256);
        a.fill(0x7F);
        let ptr = a.as_ptr();
        p.put(a);
        let s = p.get_spare(100);
        assert!(s.is_empty());
        assert!(s.capacity() >= 100);
        assert_eq!(s.as_ptr(), ptr, "reuses the retired allocation");
        assert_eq!(p.stats().hits, 1);
        let fresh = p.get_spare(64);
        assert!(fresh.is_empty() && fresh.capacity() >= 64);
        assert_eq!(p.stats().misses, 2, "initial get plus the empty-pool spare");
    }

    #[test]
    fn too_small_free_buffer_is_a_miss_not_a_panic() {
        let mut p = BufPool::new(8);
        p.put(Vec::with_capacity(8));
        let b = p.get(1024);
        assert_eq!(b.len(), 1024);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.available(), 1, "small buffer stays pooled");
    }

    #[test]
    fn hit_rate_reporting() {
        let mut p = BufPool::new(8);
        assert_eq!(p.stats().hit_rate(), 1.0, "vacuous before any get");
        let a = p.get(10);
        p.put(a);
        let _b = p.get(10);
        assert_eq!(p.stats().hit_rate(), 0.5);
        p.reset_stats();
        assert_eq!(p.stats().gets, 0);
    }
}
