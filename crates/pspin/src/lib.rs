//! # nadfs-pspin
//!
//! Architectural model of PsPIN, the open-hardware sPIN SmartNIC the paper
//! offloads DFS policies to (Di Girolamo et al., ISCA'21): 32 RISC-V HPUs
//! at 1 GHz in four clusters, per-cluster 1 MiB L1, 4 MiB L2, a hardware
//! packet scheduler and DMA engines.
//!
//! Handlers ([`handler::HandlerSet`]) are real Rust functions doing the
//! functional work; their cost is charged through the paper's own model
//! (instructions ÷ IPC, plus pipeline stage latencies from Fig 7), and
//! stalls — egress backpressure, DMA flushes — are simulated, not assumed.

pub mod config;
pub mod device;
pub mod handler;
pub mod telemetry;

pub use config::PsPinConfig;
pub use device::{HostNotify, PsPinDevice, PsPinEvent};
pub use handler::{ExecutionContext, HandlerArgs, HandlerKind, HandlerSet, Ops};
pub use telemetry::Telemetry;
