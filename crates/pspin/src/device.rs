//! The PsPIN device: packet pipeline, hardware scheduler, HPU pool, and
//! the op-replay executor.
//!
//! A packet entering the device traverses (Fig 7): packet-buffer copy →
//! inter-cluster scheduling → L1 copy → intra-cluster scheduling → handler
//! execution on an idle HPU. The scheduler enforces sPIN message semantics:
//! the header handler completes before any payload handler of the same
//! message runs, and the completion handler runs only after every payload
//! handler finished. Handlers block on NIC egress credits and on DMA
//! flushes, so their measured duration includes real stalls.
//!
//! The device is not itself a [`nadfs_simnet::Component`]; it is owned by a
//! NIC component which forwards it matching packets ([`PsPinDevice::ingest`])
//! and its wrapped self-events ([`PsPinDevice::on_event`]).

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use nadfs_host::DmaEngine;
use nadfs_simnet::{ComponentId, Ctx, Dur, NetPacket, NodeId, NodePort, SharedBufPool, Time};
use nadfs_wire::{AckPkt, CreditGrant, Frame, MsgId, Status};

use crate::config::PsPinConfig;
use crate::handler::{ExecutionContext, HandlerArgs, HandlerKind, Op, Ops};
use crate::telemetry::Telemetry;

/// Wrapper for device self-events; the owning component downcasts to this
/// and calls [`PsPinDevice::on_event`].
pub struct PsPinEvent(pub(crate) Inner);

/// Host notification emitted by a handler's `host_event` op; the owning NIC
/// component receives it and surfaces it to the DFS software (§III-C event
/// queues).
#[derive(Debug, Clone, Copy)]
pub struct HostNotify {
    pub node: NodeId,
    pub tag: u64,
}

pub(crate) enum Inner {
    BufCopied { token: u64 },
    AtCluster { token: u64 },
    L1Copied { token: u64 },
    HpuReady { token: u64 },
    RunDone { run: u64 },
    CleanupCheck { msg: MsgId },
}

struct PendingPkt {
    pkt: NetPacket<Frame>,
    cluster: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MsgPhase {
    /// Header handler not yet completed.
    Opening,
    /// Header done; payload handlers flowing.
    Streaming,
    /// Message denied at admission (descriptor exhaustion): drop packets.
    Denied,
}

struct MsgState {
    phase: MsgPhase,
    total_pkts: u32,
    pkts_seen: u32,
    ph_done: u32,
    /// Tasks parked until the header handler completes.
    parked: Vec<Task>,
    /// The completion packet's frame, kept for the completion handler.
    completion_frame: Option<(Frame, NodeId)>,
    completion_dispatched: bool,
    dma_horizon: Time,
    last_activity: Time,
    src: NodeId,
}

/// A unit of HPU work: which handlers to run on which frame.
struct Task {
    msg: MsgId,
    src: NodeId,
    frame: Frame,
    kinds: &'static [HandlerKind],
    /// Cluster whose L1 holds this packet (assigned round-robin per packet
    /// by the inter-cluster scheduler, so one message's stream spreads over
    /// all HPUs — the premise of the paper's 1310 ns budget math, §VI-C).
    cluster: usize,
    /// Time the packet became ready for an HPU (for queue-wait telemetry).
    ready_at: Time,
}

const HH_ONLY: &[HandlerKind] = &[HandlerKind::Header];
const PH_ONLY: &[HandlerKind] = &[HandlerKind::Payload];
const CH_ONLY: &[HandlerKind] = &[HandlerKind::Completion];
const CL_ONLY: &[HandlerKind] = &[HandlerKind::Cleanup];

/// A recorded handler execution being replayed over simulated time.
struct HpuRun {
    cluster: usize,
    msg: MsgId,
    /// Per-kind recorded segments: (kind, ops, instrs).
    segments: Vec<(HandlerKind, Vec<Op>, u64)>,
    seg: usize,
    op: usize,
    t: Time,
    seg_start: Time,
}

struct Cluster {
    free_hpus: usize,
    runq: VecDeque<Task>,
}

/// The device.
pub struct PsPinDevice {
    cfg: PsPinConfig,
    port: NodePort,
    dma: Rc<RefCell<DmaEngine>>,
    /// Component id of the owning NIC (receives wrapped self-events).
    owner: ComponentId,
    ctx_installed: Option<ExecutionContext>,
    clusters: Vec<Cluster>,
    msgs: HashMap<MsgId, MsgState>,
    pending: HashMap<u64, PendingPkt>,
    runs: HashMap<u64, HpuRun>,
    next_token: u64,
    next_run: u64,
    pkt_rr: usize,
    pktbuf_engine_free: Time,
    l1_engine_free: Vec<Time>,
    /// Runs parked on egress credits, FIFO.
    egress_waiters: VecDeque<u64>,
    /// Memory accounting: descriptor bytes in use vs budget.
    desc_bytes_used: u64,
    desc_bytes_budget: u64,
    /// When set, uniquely-owned DMA-write payloads are recycled here once
    /// their run retires — closing the handler-side buffer loop (the NIC's
    /// packet-buffer ring). The execution context shares the same pool.
    buf_pool: Option<SharedBufPool>,
    telemetry: Rc<RefCell<Telemetry>>,
}

impl PsPinDevice {
    pub fn new(
        cfg: PsPinConfig,
        port: NodePort,
        dma: Rc<RefCell<DmaEngine>>,
        owner: ComponentId,
    ) -> PsPinDevice {
        let clusters = (0..cfg.n_clusters)
            .map(|_| Cluster {
                free_hpus: cfg.hpus_per_cluster,
                runq: VecDeque::new(),
            })
            .collect();
        let l1_engine_free = vec![Time::ZERO; cfg.n_clusters];
        PsPinDevice {
            desc_bytes_budget: cfg.total_mem_bytes(),
            cfg,
            port,
            dma,
            owner,
            ctx_installed: None,
            clusters,
            msgs: HashMap::new(),
            pending: HashMap::new(),
            runs: HashMap::new(),
            next_token: 0,
            next_run: 0,
            pkt_rr: 0,
            pktbuf_engine_free: Time::ZERO,
            l1_engine_free,
            egress_waiters: VecDeque::new(),
            desc_bytes_used: 0,
            buf_pool: None,
            telemetry: Rc::new(RefCell::new(Telemetry::default())),
        }
    }

    /// Attach the buffer pool retired DMA-write payloads recycle into
    /// (shared with the execution-context state so handlers draw from the
    /// same ring).
    pub fn set_buf_pool(&mut self, pool: SharedBufPool) {
        self.buf_pool = Some(pool);
    }

    /// Shared handle to the device telemetry (Tables I/II, Figs 7/11/16).
    pub fn telemetry(&self) -> Rc<RefCell<Telemetry>> {
        self.telemetry.clone()
    }

    /// Install the execution context. Its `state_bytes` are reserved from
    /// device memory; the rest is the descriptor budget (§III-B: 2 MiB of
    /// DFS-wide state leaves 6 MiB ⇒ ~82 K concurrent writes).
    pub fn install_context(&mut self, ec: ExecutionContext) {
        assert!(
            ec.state_bytes < self.cfg.total_mem_bytes(),
            "context state exceeds NIC memory"
        );
        self.desc_bytes_budget = self.cfg.total_mem_bytes() - ec.state_bytes;
        self.ctx_installed = Some(ec);
    }

    pub fn has_context(&self) -> bool {
        self.ctx_installed.is_some()
    }

    /// Maximum concurrent open requests the descriptor budget allows.
    pub fn max_concurrent_requests(&self) -> u64 {
        match &self.ctx_installed {
            Some(ec) => self.desc_bytes_budget / ec.descriptor_bytes as u64,
            None => 0,
        }
    }

    /// Mutable access to the installed context state (host-side DFS software
    /// writing NIC memory, §III-C — e.g. rotating MAC keys).
    pub fn context_state_mut(&mut self) -> Option<&mut dyn Any> {
        self.ctx_installed.as_mut().map(|ec| &mut *ec.state)
    }

    pub fn open_messages(&self) -> usize {
        self.msgs.len()
    }

    /// Ingest a packet that matched the execution context. The caller (NIC)
    /// has already consumed an ingress credit, which the device releases
    /// once the packet leaves the packet buffer (after L1 copy).
    ///
    /// Message bookkeeping (descriptor admission, §III-B denial) happens
    /// here, at arrival order: the per-cluster copy engines further down
    /// the pipeline can legally reorder a small packet ahead of a large
    /// predecessor, so arrival is the only safe place to spot headers.
    pub fn ingest(&mut self, ctx: &mut Ctx<'_>, pkt: NetPacket<Frame>) {
        debug_assert!(self.has_context(), "ingest without installed context");
        let now = ctx.now();
        let bytes = pkt.wire_bytes() as u64;
        self.open_message(ctx, &pkt, now);
        let token = self.next_token;
        self.next_token += 1;
        let cluster = self.pkt_rr % self.cfg.n_clusters;
        self.pkt_rr += 1;
        self.pending.insert(token, PendingPkt { pkt, cluster });
        // Packet-buffer copy engine: serializing.
        let start = now.max(self.pktbuf_engine_free);
        let dur = self.cfg.pktbuf_copy_time(bytes);
        self.pktbuf_engine_free = start + dur;
        self.telemetry
            .borrow_mut()
            .pipeline
            .pktbuf_copy_ns
            .record_dur_ns(dur);
        let delay = (start + dur).since(now);
        self.emit(ctx, delay, Inner::BufCopied { token });
    }

    /// Track the message this packet belongs to; on its first packet,
    /// allocate the write descriptor or deny the request.
    fn open_message(&mut self, ctx: &mut Ctx<'_>, pkt: &NetPacket<Frame>, now: Time) {
        let (msg, is_first, total) = match &pkt.payload {
            Frame::Write(w) => (w.msg, w.is_first(), w.total_pkts),
            other => (other.msg(), true, 1),
        };
        let src = pkt.src;
        if let Some(st) = self.msgs.get_mut(&msg) {
            st.pkts_seen += 1;
            st.last_activity = now;
            return;
        }
        debug_assert!(is_first, "first packet of {msg:?} must arrive first");
        self.telemetry.borrow_mut().msgs_opened += 1;

        // Admission: allocate a write descriptor or deny (§III-B).
        let desc = self
            .ctx_installed
            .as_ref()
            .expect("installed context")
            .descriptor_bytes as u64;
        let denied = self.desc_bytes_used + desc > self.desc_bytes_budget;
        if denied {
            self.telemetry.borrow_mut().msgs_denied += 1;
            // NACK the client so it retries later.
            let nack = Frame::Ack(AckPkt {
                credit: CreditGrant::ZERO,
                msg,
                greq_id: None,
                status: Status::Busy,
            });
            self.try_send_now(ctx, src, nack);
        } else {
            self.desc_bytes_used += desc;
            let mut t = self.telemetry.borrow_mut();
            t.descriptor_peak_bytes = t.descriptor_peak_bytes.max(self.desc_bytes_used);
        }
        self.msgs.insert(
            msg,
            MsgState {
                phase: if denied {
                    MsgPhase::Denied
                } else {
                    MsgPhase::Opening
                },
                total_pkts: total,
                pkts_seen: 1,
                ph_done: 0,
                parked: Vec::new(),
                completion_frame: None,
                completion_dispatched: false,
                dma_horizon: Time::ZERO,
                last_activity: now,
                src,
            },
        );
        self.schedule_cleanup(ctx, msg, now);
    }

    fn emit(&self, ctx: &mut Ctx<'_>, delay: Dur, ev: Inner) {
        ctx.schedule(delay, self.owner, Box::new(PsPinEvent(ev)));
    }

    /// Entry point for wrapped self-events from the owning component.
    pub fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: PsPinEvent) {
        match ev.0 {
            Inner::BufCopied { token } => self.on_buf_copied(ctx, token),
            Inner::AtCluster { token } => self.on_at_cluster(ctx, token),
            Inner::L1Copied { token } => self.on_l1_copied(ctx, token),
            Inner::HpuReady { token } => self.on_hpu_ready(ctx, token),
            Inner::RunDone { run } => self.on_run_done(ctx, run),
            Inner::CleanupCheck { msg } => self.on_cleanup_check(ctx, msg),
        }
    }

    /// The owner must call this whenever the egress gate wakes it.
    pub fn on_gate_wake(&mut self, ctx: &mut Ctx<'_>) {
        self.retry_egress(ctx);
    }

    fn on_buf_copied(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let d = self.cfg.cycles(self.cfg.inter_sched_cycles);
        self.telemetry
            .borrow_mut()
            .pipeline
            .inter_sched_ns
            .record_dur_ns(d);
        self.emit(ctx, d, Inner::AtCluster { token });
    }

    fn on_at_cluster(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let now = ctx.now();
        let (bytes, cluster) = {
            let p = self.pending.get(&token).expect("pending packet");
            (p.pkt.wire_bytes() as u64, p.cluster)
        };
        let start = now.max(self.l1_engine_free[cluster]);
        let dur = self.cfg.l1_copy_time(bytes);
        self.l1_engine_free[cluster] = start + dur;
        self.telemetry
            .borrow_mut()
            .pipeline
            .l1_copy_ns
            .record_dur_ns(dur);
        let delay = (start + dur).since(now);
        self.emit(ctx, delay, Inner::L1Copied { token });
    }

    fn on_l1_copied(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        // Packet left the packet buffer: return the ingress credit so the
        // fabric can deliver the next packet.
        self.port.ingress_gate.borrow_mut().release(ctx);
        let d = self.cfg.cycles(self.cfg.intra_sched_cycles);
        self.telemetry
            .borrow_mut()
            .pipeline
            .intra_sched_ns
            .record_dur_ns(d);
        self.emit(ctx, d, Inner::HpuReady { token });
    }

    fn on_hpu_ready(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let now = ctx.now();
        let p = self.pending.remove(&token).expect("pending packet");
        self.telemetry.borrow_mut().pkts_processed += 1;
        let src = p.pkt.src;
        let cluster = p.cluster;
        let frame = p.pkt.payload;
        let (msg, is_first, is_last) = match &frame {
            Frame::Write(w) => (w.msg, w.is_first(), w.is_last()),
            other => (other.msg(), true, true),
        };
        let Some(st) = self.msgs.get_mut(&msg) else {
            return; // message already closed (e.g. cleaned up)
        };
        st.last_activity = now;
        if st.phase == MsgPhase::Denied {
            return; // drop silently; the client was NACKed at arrival
        }
        if is_last {
            // Keep a clone of the completion frame for the CH.
            st.completion_frame = Some((frame.clone(), src));
        }
        let ph = Task {
            msg,
            src,
            frame: frame.clone(),
            kinds: PH_ONLY,
            cluster,
            ready_at: now,
        };
        if is_first {
            // The header handler alone is the ordering barrier; the header
            // packet's own payload handler is parked like any other PH.
            st.parked.push(ph);
            self.enqueue(
                ctx,
                cluster,
                Task {
                    msg,
                    src,
                    frame,
                    kinds: HH_ONLY,
                    cluster,
                    ready_at: now,
                },
            );
        } else if st.phase == MsgPhase::Opening {
            st.parked.push(ph);
        } else {
            self.enqueue(ctx, cluster, ph);
        }
    }

    /// Best-effort immediate send used for device-level NACKs: if the
    /// egress gate is full the NACK is sent via the parked-run machinery of
    /// a zero-cost synthetic run.
    fn try_send_now(&mut self, ctx: &mut Ctx<'_>, dst: NodeId, frame: Frame) {
        let run_id = self.next_run;
        self.next_run += 1;
        let mut ops = Ops::new();
        ops.send(dst, frame);
        let run = HpuRun {
            cluster: usize::MAX, // not occupying an HPU
            msg: MsgId::new(u32::MAX, run_id),
            segments: vec![(HandlerKind::Cleanup, ops.items, 0)],
            seg: 0,
            op: 0,
            t: ctx.now(),
            seg_start: ctx.now(),
        };
        self.runs.insert(run_id, run);
        self.advance_run(ctx, run_id);
    }

    fn enqueue(&mut self, ctx: &mut Ctx<'_>, cluster: usize, task: Task) {
        self.clusters[cluster].runq.push_back(task);
        self.dispatch(ctx, cluster);
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, cluster: usize) {
        while self.clusters[cluster].free_hpus > 0 {
            let Some(task) = self.clusters[cluster].runq.pop_front() else {
                return;
            };
            self.clusters[cluster].free_hpus -= 1;
            self.start_task(ctx, cluster, task);
        }
    }

    fn start_task(&mut self, ctx: &mut Ctx<'_>, cluster: usize, task: Task) {
        let now = ctx.now();
        self.telemetry
            .borrow_mut()
            .pipeline
            .hpu_wait_ns
            .record_dur_ns(now.since(task.ready_at));
        let ec = self.ctx_installed.as_mut().expect("installed context");
        let mut segments = Vec::with_capacity(task.kinds.len());
        for &kind in task.kinds {
            let mut ops = Ops::new();
            if kind == HandlerKind::Cleanup {
                // The cleanup handler takes the state directly, without
                // the HandlerArgs wrapper (it has no triggering frame).
                ec.handlers.cleanup(&mut *ec.state, task.msg, &mut ops);
            } else {
                let args = HandlerArgs {
                    state: &mut *ec.state,
                    frame: &task.frame,
                    msg: task.msg,
                    src: task.src,
                    local: self.port.node,
                    now,
                    ops: &mut ops,
                };
                match kind {
                    HandlerKind::Header => ec.handlers.header(args),
                    HandlerKind::Payload => ec.handlers.payload(args),
                    HandlerKind::Completion => ec.handlers.completion(args),
                    HandlerKind::Cleanup => unreachable!("handled above"),
                }
            }
            segments.push((kind, ops.items, ops.instrs));
        }
        let run_id = self.next_run;
        self.next_run += 1;
        self.runs.insert(
            run_id,
            HpuRun {
                cluster,
                msg: task.msg,
                segments,
                seg: 0,
                op: 0,
                t: now,
                seg_start: now,
            },
        );
        self.advance_run(ctx, run_id);
    }

    /// Replay ops until done or parked on an egress credit.
    fn advance_run(&mut self, ctx: &mut Ctx<'_>, run_id: u64) {
        let now = ctx.now();
        let mut run = self.runs.remove(&run_id).expect("live run");
        run.t = run.t.max(now);
        loop {
            if run.seg == run.segments.len() {
                // All segments executed; completion bookkeeping at t.
                let delay = run.t.since(now);
                self.runs.insert(run_id, run);
                self.emit(ctx, delay, Inner::RunDone { run: run_id });
                return;
            }
            if run.op == run.segments[run.seg].1.len() {
                // Segment boundary: record telemetry.
                let (kind, _, instrs) = &run.segments[run.seg];
                self.telemetry.borrow_mut().record_handler(
                    *kind,
                    run.t.since(run.seg_start),
                    *instrs,
                );
                run.seg += 1;
                run.op = 0;
                run.seg_start = run.t;
                continue;
            }
            let op = &run.segments[run.seg].1[run.op];
            match op {
                Op::Charge { cycles } => {
                    run.t += self.cfg.cycles(*cycles);
                    run.op += 1;
                }
                Op::Send { dst, frame } => {
                    let granted = self.port.egress_gate.borrow_mut().try_take();
                    if granted {
                        let pkt = NetPacket::new(self.port.node, *dst, frame.clone());
                        let delay = run.t.since(now);
                        let fabric = self.port.fabric;
                        ctx.schedule(delay, fabric, Box::new(nadfs_simnet::Submit { pkt }));
                        run.op += 1;
                    } else {
                        // Park: HPU blocks holding the run.
                        self.port
                            .egress_gate
                            .borrow_mut()
                            .register_waiter(self.owner, u64::MAX);
                        self.egress_waiters.push_back(run_id);
                        self.runs.insert(run_id, run);
                        return;
                    }
                }
                Op::DmaWrite { addr, data } => {
                    let done = self.dma.borrow_mut().write(run.t, *addr, data);
                    if let Some(st) = self.msgs.get_mut(&run.msg) {
                        st.dma_horizon = st.dma_horizon.max(done);
                    }
                    run.op += 1;
                }
                Op::WaitFlush => {
                    if let Some(st) = self.msgs.get(&run.msg) {
                        run.t = run.t.max(st.dma_horizon);
                    }
                    run.op += 1;
                }
                Op::HostEvent { tag } => {
                    let delay = run.t.since(now);
                    let note = HostNotify {
                        node: self.port.node,
                        tag: *tag,
                    };
                    ctx.schedule(delay, self.owner, Box::new(note));
                    run.op += 1;
                }
            }
        }
    }

    fn retry_egress(&mut self, ctx: &mut Ctx<'_>) {
        // FIFO re-attempt; each may re-park (bounded by the starting count).
        let n = self.egress_waiters.len();
        for _ in 0..n {
            if self.port.egress_gate.borrow().available() == 0 {
                break;
            }
            let Some(run_id) = self.egress_waiters.pop_front() else {
                break;
            };
            self.advance_run(ctx, run_id);
        }
        // A gate wake drains the waiter list; if runs remain parked we must
        // re-register or later credit releases will never wake us.
        if !self.egress_waiters.is_empty() {
            self.port
                .egress_gate
                .borrow_mut()
                .register_waiter(self.owner, u64::MAX);
        }
    }

    fn on_run_done(&mut self, ctx: &mut Ctx<'_>, run_id: u64) {
        let mut run = self.runs.remove(&run_id).expect("live run");
        if run.cluster != usize::MAX {
            self.clusters[run.cluster].free_hpus += 1;
        }
        let kinds: Vec<HandlerKind> = run.segments.iter().map(|s| s.0).collect();
        let msg = run.msg;
        // The run's recorded ops die here; recycle any DMA-write payload
        // this NIC was the last owner of (pooled accumulators, landed
        // packet data whose frames have all been dropped) back into the
        // packet-buffer ring.
        if let Some(pool) = &self.buf_pool {
            let mut pool = pool.borrow_mut();
            for (_, ops, _) in run.segments.drain(..) {
                for op in ops {
                    if let Op::DmaWrite { data, .. } = op {
                        if let Ok(v) = data.try_unwrap() {
                            pool.put(v);
                        }
                    }
                }
            }
        }
        let mut close = false;
        let mut enqueue_ch: Option<Task> = None;
        if let Some(st) = self.msgs.get_mut(&msg) {
            st.last_activity = ctx.now();
            for k in &kinds {
                match k {
                    HandlerKind::Header => {
                        st.phase = MsgPhase::Streaming;
                    }
                    HandlerKind::Payload => {
                        st.ph_done += 1;
                    }
                    HandlerKind::Completion | HandlerKind::Cleanup => {
                        close = true;
                    }
                }
            }
            if kinds.contains(&HandlerKind::Header) && !st.parked.is_empty() {
                let parked = std::mem::take(&mut st.parked);
                let mut touched = Vec::new();
                for t in parked {
                    if !touched.contains(&t.cluster) {
                        touched.push(t.cluster);
                    }
                    self.clusters[t.cluster].runq.push_back(t);
                }
                for c in touched {
                    self.dispatch(ctx, c);
                }
            }
        }
        // Completion-handler release check.
        if !close {
            if let Some(st) = self.msgs.get_mut(&msg) {
                if !st.completion_dispatched
                    && st.ph_done == st.total_pkts
                    && st.completion_frame.is_some()
                {
                    st.completion_dispatched = true;
                    let (frame, src) = st.completion_frame.clone().expect("completion frame");
                    let cluster = self.pkt_rr % self.cfg.n_clusters;
                    self.pkt_rr += 1;
                    enqueue_ch = Some(Task {
                        msg,
                        src,
                        frame,
                        kinds: CH_ONLY,
                        cluster,
                        ready_at: ctx.now(),
                    });
                }
            }
            if let Some(t) = enqueue_ch {
                let cluster = t.cluster;
                self.enqueue(ctx, cluster, t);
            }
        }
        if close {
            self.close_msg(msg, kinds.contains(&HandlerKind::Cleanup));
        }
        if run.cluster != usize::MAX {
            self.dispatch(ctx, run.cluster);
        }
    }

    fn close_msg(&mut self, msg: MsgId, cleaned: bool) {
        if let Some(st) = self.msgs.remove(&msg) {
            if st.phase != MsgPhase::Denied {
                let desc = self
                    .ctx_installed
                    .as_ref()
                    .expect("installed context")
                    .descriptor_bytes as u64;
                self.desc_bytes_used = self.desc_bytes_used.saturating_sub(desc);
                if cleaned {
                    self.telemetry.borrow_mut().msgs_cleaned += 1;
                } else {
                    self.telemetry.borrow_mut().msgs_completed += 1;
                }
            }
        }
    }

    fn schedule_cleanup(&mut self, ctx: &mut Ctx<'_>, msg: MsgId, _now: Time) {
        self.emit(ctx, self.cfg.cleanup_timeout, Inner::CleanupCheck { msg });
    }

    fn on_cleanup_check(&mut self, ctx: &mut Ctx<'_>, msg: MsgId) {
        let now = ctx.now();
        let Some(st) = self.msgs.get(&msg) else {
            return; // completed normally
        };
        let idle = now.since(st.last_activity);
        if idle < self.cfg.cleanup_timeout {
            let remaining = self.cfg.cleanup_timeout - idle;
            ctx.schedule(
                remaining,
                self.owner,
                Box::new(PsPinEvent(Inner::CleanupCheck { msg })),
            );
            return;
        }
        if st.phase == MsgPhase::Denied {
            // Denied messages hold no descriptor; just forget them.
            self.msgs.remove(&msg);
            return;
        }
        // Run the cleanup handler on the next round-robin cluster.
        let cluster = self.pkt_rr % self.cfg.n_clusters;
        self.pkt_rr += 1;
        let src = st.src;
        let frame = Frame::Ack(AckPkt {
            credit: CreditGrant::ZERO,
            msg,
            greq_id: None,
            status: Status::Rejected,
        }); // placeholder frame; cleanup handlers only see the msg id
        self.enqueue(
            ctx,
            cluster,
            Task {
                msg,
                src,
                frame,
                kinds: CL_ONLY,
                cluster,
                ready_at: now,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::HandlerSet;
    use bytes::Bytes;
    use nadfs_host::{DmaConfig, HostMemory};
    use nadfs_simnet::{Arrive, Component, Engine, Fabric, FabricConfig, GateWake};
    use nadfs_wire::{split_payload, WritePkt};

    /// Minimal handler set: validate-ish HH, PH DMAs payload (and forwards
    /// a copy when `fanout > 0`), CH flushes and acks the client.
    struct TestHandlers {
        fanout: usize,
        fwd_to: NodeId,
    }
    #[derive(Default)]
    struct TestState {
        headers_seen: u32,
        payloads_seen: u32,
        completions_seen: u32,
        cleanups_seen: u32,
    }

    impl HandlerSet for TestHandlers {
        fn header(&mut self, a: HandlerArgs<'_>) {
            let st = a.state.downcast_mut::<TestState>().expect("state");
            st.headers_seen += 1;
            a.ops.charge_instrs(120, 0.57);
        }
        fn payload(&mut self, a: HandlerArgs<'_>) {
            let st = a.state.downcast_mut::<TestState>().expect("state");
            st.payloads_seen += 1;
            a.ops.charge_instrs(55, 0.60);
            if let Frame::Write(w) = a.frame {
                a.ops.dma_write(0x10_000 + w.offset as u64, w.data.clone());
                for _ in 0..self.fanout {
                    let mut fwd = w.clone();
                    fwd.msg = MsgId::new(a.local as u32, 1_000_000 + w.pkt_idx as u64);
                    a.ops.send(self.fwd_to, Frame::Write(fwd));
                }
            }
        }
        fn completion(&mut self, a: HandlerArgs<'_>) {
            let st = a.state.downcast_mut::<TestState>().expect("state");
            st.completions_seen += 1;
            a.ops.charge_instrs(66, 0.62);
            a.ops.wait_flush();
            a.ops.send(
                a.src,
                Frame::Ack(AckPkt {
                    credit: CreditGrant::ZERO,
                    msg: a.msg,
                    greq_id: Some(1),
                    status: Status::Ok,
                }),
            );
        }
        fn cleanup(&mut self, state: &mut dyn Any, _msg: MsgId, ops: &mut Ops) {
            let st = state.downcast_mut::<TestState>().expect("state");
            st.cleanups_seen += 1;
            ops.charge_cycles(50);
            ops.host_event(0xC1EA);
        }
    }

    /// NIC owner for the device under test.
    struct TestNic {
        dev: Option<PsPinDevice>,
    }
    impl Component for TestNic {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
            let dev = self.dev.as_mut().expect("device");
            let ev = match ev.downcast::<Arrive<Frame>>() {
                Ok(a) => {
                    dev.ingest(ctx, a.pkt);
                    return;
                }
                Err(e) => e,
            };
            let ev = match ev.downcast::<PsPinEvent>() {
                Ok(p) => {
                    dev.on_event(ctx, *p);
                    return;
                }
                Err(e) => e,
            };
            let ev = match ev.downcast::<GateWake>() {
                Ok(_) => {
                    dev.on_gate_wake(ctx);
                    return;
                }
                Err(e) => e,
            };
            if ev.downcast::<HostNotify>().is_ok() {
                return; // logged implicitly via cleanup counter
            }
            panic!("unexpected event at TestNic");
        }
    }

    /// Client component: sends one write message (respecting egress
    /// credits), records ack times.
    struct TestClient {
        port: Option<NodePort>,
        dst: NodeId,
        size: u32,
        queued: Option<VecDeque<Frame>>,
        acks: Rc<RefCell<Vec<(Time, Status)>>>,
        abandon_after_header: bool,
    }
    struct Go;
    impl TestClient {
        fn build_packets(&self) -> VecDeque<Frame> {
            let parts = split_payload(self.size, 1800, 1978);
            let total = parts.len() as u32;
            parts
                .into_iter()
                .enumerate()
                .take(if self.abandon_after_header {
                    1
                } else {
                    usize::MAX
                })
                .map(|(i, (off, len))| {
                    Frame::Write(WritePkt {
                        msg: MsgId::new(self.port.as_ref().expect("port").node as u32, 7),
                        pkt_idx: i as u32,
                        total_pkts: total,
                        dfs: None,
                        wrh: None,
                        offset: off,
                        data: Bytes::from(vec![0xAB; len as usize]),
                    })
                })
                .collect()
        }
        fn pump(&mut self, ctx: &mut Ctx<'_>) {
            let port = self.port.clone().expect("port");
            let q = self.queued.get_or_insert_with(VecDeque::new);
            while let Some(frame) = q.front() {
                let pkt = NetPacket::new(port.node, self.dst, frame.clone());
                if port.try_submit(ctx, pkt) {
                    q.pop_front();
                } else {
                    let id = ctx.self_id;
                    port.egress_gate.borrow_mut().register_waiter(id, 0);
                    break;
                }
            }
        }
    }
    impl Component for TestClient {
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
            let ev = match ev.downcast::<Arrive<Frame>>() {
                Ok(a) => {
                    if let Frame::Ack(ack) = a.pkt.payload {
                        self.acks.borrow_mut().push((ctx.now(), ack.status));
                        let port = self.port.as_ref().expect("port");
                        port.ingress_gate.borrow_mut().release(ctx);
                    }
                    return;
                }
                Err(e) => e,
            };
            if ev.downcast::<Go>().is_ok() && self.queued.is_none() {
                self.queued = Some(self.build_packets());
            }
            self.pump(ctx); // Go and GateWake both pump
        }
    }

    struct Rig {
        engine: Engine,
        acks: Rc<RefCell<Vec<(Time, Status)>>>,
        mem: nadfs_host::SharedMemory,
    }

    fn build_rig(size: u32, fanout: usize, abandon: bool, cleanup_ms: u64) -> Rig {
        let mut e = Engine::new();
        let fid = e.reserve_id();
        let client_id = e.reserve_id();
        let nic_id = e.reserve_id();
        let sink_id = e.reserve_id(); // fanout target that consumes silently
        let mut fab: Fabric<Frame> = Fabric::new(FabricConfig::default(), fid);
        let cport = fab.register_node(client_id, None);
        let cfg = PsPinConfig {
            cleanup_timeout: Dur::from_ms(cleanup_ms),
            ..Default::default()
        };
        let nport = fab.register_node(nic_id, Some(cfg.pktbuf_slots));
        let sport = fab.register_node(sink_id, None);
        e.install(fid, Box::new(fab));

        let mem = HostMemory::new();
        let dma = Rc::new(RefCell::new(DmaEngine::new(
            DmaConfig::default(),
            mem.clone(),
        )));
        let mut dev = PsPinDevice::new(cfg, nport, dma, nic_id);
        dev.install_context(ExecutionContext {
            handlers: Box::new(TestHandlers {
                fanout,
                fwd_to: sport.node,
            }),
            state: Box::new(TestState::default()),
            state_bytes: 2 << 20,
            descriptor_bytes: 77,
        });
        e.install(nic_id, Box::new(TestNic { dev: Some(dev) }));

        let acks = Rc::new(RefCell::new(vec![]));
        e.install(
            client_id,
            Box::new(TestClient {
                dst: 1,
                port: Some(cport),
                size,
                queued: None,
                abandon_after_header: abandon,
                acks: acks.clone(),
            }),
        );
        // Silent sink for forwarded packets.
        struct Silent {
            port: Option<NodePort>,
        }
        impl Component for Silent {
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
                if ev.downcast::<Arrive<Frame>>().is_ok() {
                    let port = self.port.as_ref().expect("port");
                    port.ingress_gate.borrow_mut().release(ctx);
                }
            }
        }
        e.install(sink_id, Box::new(Silent { port: Some(sport) }));
        e.schedule(Dur::ZERO, client_id, Box::new(Go));
        Rig {
            engine: e,
            acks,
            mem,
        }
    }

    #[test]
    fn single_packet_write_runs_all_three_handlers_and_acks() {
        let mut rig = build_rig(1024, 0, false, 1000);
        rig.engine.run_until(Time(Dur::from_ms(2).ps()));
        let acks = rig.acks.borrow();
        assert_eq!(acks.len(), 1, "client must receive the completion ack");
        assert_eq!(acks[0].1, Status::Ok);
        // Latency must include pipeline + HH+PH+CH + DMA flush + ack return.
        assert!(acks[0].0 > Time(Dur::from_ns(500).ps()));
        // Data must be durably in host memory.
        assert_eq!(rig.mem.borrow().read(0x10_000, 1024), vec![0xAB; 1024]);
    }

    #[test]
    fn multi_packet_write_dmas_all_payload() {
        let size = 100_000u32;
        let mut rig = build_rig(size, 0, false, 1000);
        rig.engine.run_until(Time(Dur::from_ms(5).ps()));
        assert_eq!(rig.acks.borrow().len(), 1);
        assert_eq!(
            rig.mem.borrow().read(0x10_000, size as usize),
            vec![0xAB; size as usize]
        );
    }

    #[test]
    fn fanout_forwards_every_packet() {
        let size = 50_000u32;
        let mut rig = build_rig(size, 2, false, 1000);
        rig.engine.run_until(Time(Dur::from_ms(5).ps()));
        assert_eq!(rig.acks.borrow().len(), 1, "ack still arrives with fanout");
    }

    #[test]
    fn abandoned_write_triggers_cleanup() {
        let mut rig = build_rig(50_000, 0, true, 1);
        rig.engine.run_until(Time(Dur::from_ms(10).ps()));
        assert!(rig.acks.borrow().is_empty(), "no ack for abandoned write");
    }
}
