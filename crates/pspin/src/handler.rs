//! The sPIN handler programming interface (paper Listing 1).
//!
//! Applications define header / payload / completion handlers (plus the
//! cleanup handler this work adds, §VII). Handlers are real Rust functions
//! that perform the *functional* work on the execution context's NIC-memory
//! state and record an operation list ([`Ops`]) describing what the HPU
//! does over simulated time: cycles burned, packets sent, DMA issued.
//! The device replays the list, blocking on egress credits and DMA flushes,
//! so handler *duration* includes real stalls (this is how the paper's
//! PBT IPC collapse emerges rather than being scripted).

use std::any::Any;

use bytes::Bytes;
use nadfs_simnet::{NodeId, Time};
use nadfs_wire::{Frame, MsgId};

/// Which handler of the triple (plus cleanup) a record refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum HandlerKind {
    Header,
    Payload,
    Completion,
    Cleanup,
}

impl HandlerKind {
    pub fn short(&self) -> &'static str {
        match self {
            HandlerKind::Header => "HH",
            HandlerKind::Payload => "PH",
            HandlerKind::Completion => "CH",
            HandlerKind::Cleanup => "CL",
        }
    }
}

/// One operation in a handler's recorded execution.
#[derive(Debug)]
pub enum Op {
    /// Burn `cycles` of HPU time.
    Charge { cycles: u64 },
    /// Emit a packet (blocks the HPU while the NIC egress queue is full).
    Send { dst: NodeId, frame: Frame },
    /// Post a DMA write toward host memory (asynchronous).
    DmaWrite { addr: u64, data: Bytes },
    /// Block until every DMA write of this *message* is durable — the
    /// explicit flush the paper highlights under data persistence
    /// (§III-B-1).
    WaitFlush,
    /// Notify the host DFS software through the event queue (§III-C);
    /// delivered to the NIC owner's component with this tag.
    HostEvent { tag: u64 },
}

/// Recorder handed to handler code.
#[derive(Debug, Default)]
pub struct Ops {
    pub(crate) items: Vec<Op>,
    pub(crate) instrs: u64,
}

impl Ops {
    pub fn new() -> Ops {
        Ops::default()
    }

    /// Burn raw cycles (no instruction accounting).
    pub fn charge_cycles(&mut self, cycles: u64) {
        if cycles > 0 {
            self.items.push(Op::Charge { cycles });
        }
    }

    /// Account `instrs` instructions executing at `ipc` instructions/cycle.
    /// This is the paper's cost model: duration = instructions ÷ IPC.
    pub fn charge_instrs(&mut self, instrs: u64, ipc: f64) {
        assert!(ipc > 0.0, "ipc must be positive");
        self.instrs += instrs;
        let cycles = (instrs as f64 / ipc).round() as u64;
        self.charge_cycles(cycles);
    }

    pub fn send(&mut self, dst: NodeId, frame: Frame) {
        self.items.push(Op::Send { dst, frame });
    }

    pub fn dma_write(&mut self, addr: u64, data: Bytes) {
        self.items.push(Op::DmaWrite { addr, data });
    }

    pub fn wait_flush(&mut self) {
        self.items.push(Op::WaitFlush);
    }

    pub fn host_event(&mut self, tag: u64) {
        self.items.push(Op::HostEvent { tag });
    }

    pub fn instr_count(&self) -> u64 {
        self.instrs
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Arguments a handler receives: the execution context state (NIC memory),
/// the triggering frame, and identifiers.
pub struct HandlerArgs<'a> {
    /// Execution-context state living in NIC memory (`task->mem` in the
    /// paper's Listing 1). Downcast to the DFS state type.
    pub state: &'a mut dyn Any,
    pub frame: &'a Frame,
    pub msg: MsgId,
    /// Source node of the packet.
    pub src: NodeId,
    /// This storage node's address.
    pub local: NodeId,
    pub now: Time,
    pub ops: &'a mut Ops,
}

/// A set of sPIN handlers for one execution context (paper Listing 1:
/// `header_handler`, `payload_handler`, `tail_handler`; §VII adds the
/// cleanup handler).
pub trait HandlerSet {
    /// Runs on the first packet of a message, before any payload handler.
    fn header(&mut self, a: HandlerArgs<'_>);
    /// Runs on every packet (header and completion included).
    fn payload(&mut self, a: HandlerArgs<'_>);
    /// Runs on the last packet, after all payload handlers completed.
    fn completion(&mut self, a: HandlerArgs<'_>);
    /// Runs when an open message has been inactive past the timeout.
    fn cleanup(&mut self, state: &mut dyn Any, msg: MsgId, ops: &mut Ops);
}

/// An installed execution context: handlers plus their NIC-memory state.
pub struct ExecutionContext {
    pub handlers: Box<dyn HandlerSet>,
    pub state: Box<dyn Any>,
    /// NIC memory reserved for DFS-wide state (e.g. the 64 KiB GF table,
    /// accumulator pool). Charged against device memory at install.
    pub state_bytes: u64,
    /// Per-open-request descriptor size; the paper's write descriptor is
    /// 77 B (§III-B).
    pub descriptor_bytes: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_instrs_converts_with_ipc() {
        let mut o = Ops::new();
        o.charge_instrs(120, 0.57);
        assert_eq!(o.instr_count(), 120);
        match &o.items[0] {
            Op::Charge { cycles } => assert_eq!(*cycles, 211), // 120/0.57
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_charge_is_elided() {
        let mut o = Ops::new();
        o.charge_cycles(0);
        assert!(o.is_empty());
    }

    #[test]
    fn ops_record_in_order() {
        let mut o = Ops::new();
        o.charge_cycles(5);
        o.wait_flush();
        o.host_event(9);
        assert_eq!(o.items.len(), 3);
        assert!(matches!(o.items[0], Op::Charge { cycles: 5 }));
        assert!(matches!(o.items[1], Op::WaitFlush));
        assert!(matches!(o.items[2], Op::HostEvent { tag: 9 }));
    }
}
