//! PsPIN device configuration.
//!
//! Defaults reproduce the device evaluated in the paper (§II-B, §III-B,
//! Fig 7): a PULP-based packet processor with 32 RISC-V HPUs at 1 GHz in
//! four compute clusters, 1 MiB single-cycle L1 per cluster, 4 MiB L2,
//! a hardware scheduler with 1-2 cycle scheduling latency, and DMA engines
//! toward host memory.

use nadfs_simnet::Dur;

#[derive(Clone, Debug)]
pub struct PsPinConfig {
    pub n_clusters: usize,
    pub hpus_per_cluster: usize,
    /// Core clock in GHz; 1.0 makes one cycle = 1 ns.
    pub clock_ghz: f64,
    /// Per-cluster L1 bytes (descriptor + state storage).
    pub l1_bytes_per_cluster: u64,
    /// Off-cluster L2 bytes (descriptor swap-out area).
    pub l2_bytes: u64,
    /// Packet-buffer capacity in packets; doubles as the NIC ingress credit
    /// count, so a full buffer backpressures the network losslessly.
    pub pktbuf_slots: usize,
    /// Packet-buffer copy throughput (Fig 7: 32 cycles for a 2 KiB packet).
    pub pktbuf_bytes_per_cycle: u64,
    /// Cluster L1 copy throughput (Fig 7: 43 cycles for a 2 KiB packet).
    pub l1_bytes_per_cycle: u64,
    /// Inter-cluster scheduling latency in cycles (Fig 7: 2).
    pub inter_sched_cycles: u64,
    /// Intra-cluster (HPU) scheduling latency in cycles (Fig 7: 1).
    pub intra_sched_cycles: u64,
    /// Inactivity timeout after which the cleanup handler fires for an
    /// incomplete message (§VII, client-failure discussion).
    pub cleanup_timeout: Dur,
}

impl Default for PsPinConfig {
    fn default() -> Self {
        PsPinConfig {
            n_clusters: 4,
            hpus_per_cluster: 8,
            clock_ghz: 1.0,
            l1_bytes_per_cluster: 1 << 20,
            l2_bytes: 4 << 20,
            pktbuf_slots: 64,
            pktbuf_bytes_per_cycle: 64,
            l1_bytes_per_cycle: 48,
            inter_sched_cycles: 2,
            intra_sched_cycles: 1,
            cleanup_timeout: Dur::from_ms(1),
        }
    }
}

impl PsPinConfig {
    /// Total HPU count (paper device: 32).
    pub fn total_hpus(&self) -> usize {
        self.n_clusters * self.hpus_per_cluster
    }

    /// Convert cycles to simulated time at the configured clock.
    pub fn cycles(&self, c: u64) -> Dur {
        Dur::from_ns_f64(c as f64 / self.clock_ghz)
    }

    /// Packet-buffer copy-in time for a packet of `bytes`.
    pub fn pktbuf_copy_time(&self, bytes: u64) -> Dur {
        self.cycles(bytes.div_ceil(self.pktbuf_bytes_per_cycle))
    }

    /// L1 copy time for a packet of `bytes`.
    pub fn l1_copy_time(&self, bytes: u64) -> Dur {
        self.cycles(bytes.div_ceil(self.l1_bytes_per_cycle))
    }

    /// Total NIC memory available for descriptors and DFS state
    /// (§III-B: 4×1 MiB L1 + 4 MiB L2 = 8 MiB).
    pub fn total_mem_bytes(&self) -> u64 {
        self.l1_bytes_per_cluster * self.n_clusters as u64 + self.l2_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_device_shape() {
        let c = PsPinConfig::default();
        assert_eq!(c.total_hpus(), 32);
        assert_eq!(c.total_mem_bytes(), 8 << 20);
    }

    #[test]
    fn fig7_stage_times_for_2kib_packet() {
        let c = PsPinConfig::default();
        assert_eq!(c.pktbuf_copy_time(2048), Dur::from_ns(32));
        assert_eq!(c.l1_copy_time(2048), Dur::from_ns(43)); // ceil(2048/48)=43
        assert_eq!(c.cycles(c.inter_sched_cycles), Dur::from_ns(2));
        assert_eq!(c.cycles(c.intra_sched_cycles), Dur::from_ns(1));
    }

    #[test]
    fn cycles_respect_clock() {
        let c = PsPinConfig {
            clock_ghz: 2.0,
            ..Default::default()
        };
        assert_eq!(c.cycles(100), Dur::from_ns(50));
    }
}
