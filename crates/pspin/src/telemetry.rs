//! Handler and pipeline telemetry: the measurements behind Tables I & II
//! and Figures 7, 11, and 16 of the paper.

use std::collections::HashMap;

use nadfs_simnet::stats::Sampler;
use nadfs_simnet::Dur;

use crate::handler::HandlerKind;

/// Statistics for one handler kind.
#[derive(Debug, Default)]
pub struct KindStats {
    pub duration_ns: Sampler,
    pub instructions: Sampler,
}

impl KindStats {
    /// Mean instructions per cycle: instructions ÷ duration (1 cycle = 1 ns
    /// at the default 1 GHz clock). IPC degrades when handlers stall.
    pub fn mean_ipc(&self, clock_ghz: f64) -> f64 {
        let cycles = self.duration_ns.mean() * clock_ghz;
        self.instructions.mean() / cycles
    }
}

/// Fig 7 pipeline stage measurements.
#[derive(Debug, Default)]
pub struct PipelineStats {
    pub pktbuf_copy_ns: Sampler,
    pub inter_sched_ns: Sampler,
    pub l1_copy_ns: Sampler,
    pub intra_sched_ns: Sampler,
    /// HPU queueing delay (waiting for a free HPU), not part of Fig 7's
    /// minimum pipeline but useful diagnostically.
    pub hpu_wait_ns: Sampler,
}

/// Device telemetry.
#[derive(Debug, Default)]
pub struct Telemetry {
    by_kind: HashMap<HandlerKind, KindStats>,
    pub pipeline: PipelineStats,
    pub pkts_processed: u64,
    pub msgs_opened: u64,
    pub msgs_completed: u64,
    pub msgs_denied: u64,
    pub msgs_cleaned: u64,
    pub descriptor_peak_bytes: u64,
}

impl Telemetry {
    pub fn record_handler(&mut self, kind: HandlerKind, dur: Dur, instrs: u64) {
        let s = self.by_kind.entry(kind).or_default();
        s.duration_ns.record_dur_ns(dur);
        s.instructions.record(instrs as f64);
    }

    pub fn kind(&self, kind: HandlerKind) -> Option<&KindStats> {
        self.by_kind.get(&kind)
    }

    /// (mean duration ns, mean instructions, mean IPC) for a handler kind.
    pub fn summary(&self, kind: HandlerKind, clock_ghz: f64) -> Option<(f64, f64, f64)> {
        self.by_kind.get(&kind).map(|s| {
            (
                s.duration_ns.mean(),
                s.instructions.mean(),
                s.mean_ipc(clock_ghz),
            )
        })
    }

    pub fn clear_handler_stats(&mut self) {
        self.by_kind.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_reflects_stalls() {
        let mut t = Telemetry::default();
        // 130 instructions in 217 ns -> IPC 0.6; with stalls, 2106 ns -> 0.06.
        t.record_handler(HandlerKind::Payload, Dur::from_ns(2106), 130);
        let (d, i, ipc) = t.summary(HandlerKind::Payload, 1.0).expect("stats");
        assert_eq!(d, 2106.0);
        assert_eq!(i, 130.0);
        assert!((ipc - 0.0617).abs() < 0.001);
    }

    #[test]
    fn kinds_are_separate() {
        let mut t = Telemetry::default();
        t.record_handler(HandlerKind::Header, Dur::from_ns(211), 120);
        t.record_handler(HandlerKind::Completion, Dur::from_ns(107), 66);
        assert!(t.kind(HandlerKind::Header).is_some());
        assert!(t.kind(HandlerKind::Payload).is_none());
        let (d, ..) = t.summary(HandlerKind::Completion, 1.0).expect("stats");
        assert_eq!(d, 107.0);
    }
}
