//! Property tests for the offset/len → stripe-extent mapping and the
//! extent-map read resolution: ragged tails, cross-stripe ranges,
//! arbitrary overlap histories, and degraded EC routing all preserve the
//! partition / latest-wins / survivor invariants the read path builds on.

use std::collections::HashSet;

use proptest::collection::vec;
use proptest::prelude::*;

use nadfs_meta::{ExtentMap, ExtentRecord, LayoutSpec, ReadPiece, ReadPlan, StripedLayout};
use nadfs_wire::{ReplicaCoord, RsScheme};

/// Every byte of `[0, plan.len)` must be covered by exactly one piece.
fn coverage(plan: &ReadPlan) -> Vec<u32> {
    let mut covered = vec![0u32; plan.len as usize];
    let mut mark = |off: u32, len: u32| {
        for b in &mut covered[off as usize..(off + len) as usize] {
            *b += 1;
        }
    };
    for p in &plan.pieces {
        match p {
            ReadPiece::Hole { dest_off, len } => mark(*dest_off, *len),
            ReadPiece::Direct { dest_off, len, .. } => mark(*dest_off, *len),
            ReadPiece::Degraded { copy, .. } => {
                for c in copy {
                    mark(c.dest_off, c.len);
                }
            }
        }
    }
    covered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // `StripedLayout::extents` partitions any logical range into
    // contiguous, chunk-bounded, correctly-routed pieces — ragged tails
    // and cross-stripe ranges included.
    #[test]
    fn stripe_extents_partition_and_route(
        width in 1u32..6,
        chunk in 1u32..5000,
        offset in 0u64..100_000,
        len in 1u32..50_000,
    ) {
        let nodes: Vec<u32> = (10..10 + width).collect();
        let layout = StripedLayout::new(LayoutSpec::striped(width, chunk), nodes.clone());
        let extents = layout.extents(offset, len);
        // Contiguity + total coverage in file order.
        let mut cur = offset;
        for e in &extents {
            prop_assert_eq!(e.file_offset, cur);
            prop_assert!(e.len > 0);
            cur += e.len as u64;
            // Each piece stays inside one stripe unit.
            let unit_start = e.file_offset / chunk as u64;
            let unit_end = (e.file_offset + e.len as u64 - 1) / chunk as u64;
            prop_assert_eq!(unit_start, unit_end);
            prop_assert_eq!(e.stripe_index, unit_start);
            // Round-robin routing.
            prop_assert_eq!(e.node, nodes[(unit_start % width as u64) as usize]);
        }
        prop_assert_eq!(cur, offset + len as u64);
    }

    // Resolution over an arbitrary history of (possibly overlapping)
    // plain writes: every byte covered exactly once, and each byte comes
    // from the latest record that wrote it (checked against a byte-level
    // model).
    #[test]
    fn resolve_is_a_latest_wins_partition(
        writes in vec((0u64..2_000, 1u32..800), 1..12),
        read_off in 0u64..2_500,
        read_len in 1u32..1_000,
    ) {
        let mut map = ExtentMap::new();
        // Model: per-byte owner (record index), None = hole. Record i
        // stores bytes at distinct addresses so sources are identifiable.
        let mut model: Vec<Option<usize>> = vec![None; 4_000];
        for (i, (off, len)) in writes.iter().enumerate() {
            map.record(ExtentRecord::Plain {
                offset: *off,
                len: *len,
                coord: ReplicaCoord { node: i as u32, addr: (i as u64) << 32 },
            });
            for b in *off..(*off + *len as u64).min(model.len() as u64) {
                model[b as usize] = Some(i);
            }
        }
        let plan = map.resolve(read_off, read_len, &HashSet::new()).expect("resolve");
        prop_assert!(coverage(&plan).iter().all(|&c| c == 1), "not a partition");
        for p in &plan.pieces {
            match p {
                ReadPiece::Hole { dest_off, len } => {
                    for d in *dest_off..(*dest_off + *len) {
                        let byte = read_off + d as u64;
                        let owner = model.get(byte as usize).copied().flatten();
                        prop_assert_eq!(owner, None);
                    }
                }
                ReadPiece::Direct { coord, len, dest_off } => {
                    let rec = (coord.addr >> 32) as usize;
                    prop_assert_eq!(coord.node as usize, rec);
                    for d in 0..*len {
                        let byte = read_off + (*dest_off + d) as u64;
                        let owner = model[byte as usize];
                        prop_assert_eq!(owner, Some(rec));
                        // Address arithmetic: the piece reads the byte at
                        // its offset within the owning record.
                        let (rec_off, _) = writes[rec];
                        prop_assert_eq!(
                            coord.addr + d as u64,
                            ((rec as u64) << 32) + (byte - rec_off)
                        );
                    }
                }
                ReadPiece::Degraded { .. } => prop_assert!(false, "no EC records here"),
            }
        }
    }

    // Compaction is invisible to resolution: for any overwrite history,
    // a compacted map resolves every read to byte-identical sources as
    // the uncompacted original, and the remap table is a consistent
    // old-index → new-index function (None exactly for dropped records).
    #[test]
    fn compacted_map_resolves_identically(
        writes in vec((0u64..2_000, 1u32..800), 1..24),
        read_off in 0u64..2_500,
        read_len in 1u32..1_000,
    ) {
        let mut original = ExtentMap::new();
        for (i, (off, len)) in writes.iter().enumerate() {
            original.record(ExtentRecord::Plain {
                offset: *off,
                len: *len,
                coord: ReplicaCoord { node: i as u32, addr: (i as u64) << 32 },
            });
        }
        let mut compacted = original.clone();
        let result = compacted.compact();
        // Remap consistency: survivors keep their relative order, map to
        // identical records, and dropped count matches.
        prop_assert_eq!(result.remap.len(), original.len());
        prop_assert_eq!(original.len() - result.dropped, compacted.len());
        let mut expect_new = 0usize;
        for (old, slot) in result.remap.iter().enumerate() {
            if let Some(new) = slot {
                prop_assert_eq!(*new, expect_new, "survivors stay ordered");
                prop_assert_eq!(
                    compacted.records()[*new].clone(),
                    original.records()[old].clone()
                );
                expect_new += 1;
            }
        }
        prop_assert_eq!(expect_new, compacted.len());
        // Resolution equivalence over the sampled range AND the full map.
        let none = HashSet::new();
        for (off, len) in [(read_off, read_len), (0, 4_000)] {
            let a = original.resolve(off, len, &none).expect("resolve original");
            let b = compacted.resolve(off, len, &none).expect("resolve compacted");
            prop_assert_eq!(a.len, b.len);
            // Same byte → same source address: flatten both plans into a
            // per-byte source map (None = hole) and compare.
            let flatten = |plan: &ReadPlan| -> Vec<Option<(u32, u64)>> {
                let mut src: Vec<Option<(u32, u64)>> = vec![None; plan.len as usize];
                for p in &plan.pieces {
                    if let ReadPiece::Direct { coord, len, dest_off } = p {
                        for d in 0..*len {
                            src[(*dest_off + d) as usize] =
                                Some((coord.node, coord.addr + d as u64));
                        }
                    }
                }
                src
            };
            prop_assert_eq!(flatten(&a), flatten(&b));
        }
        // Idempotence: a second compaction finds nothing more to drop.
        let gen = compacted.generation();
        let again = compacted.compact();
        prop_assert_eq!(again.dropped, 0);
        prop_assert_eq!(compacted.generation(), gen, "no-op keeps the generation");
    }

    // Degraded EC resolution: the fetch set is exactly k distinct live
    // shards, copies cover precisely the failed chunks' overlap with the
    // request, and healthy chunks stay direct.
    #[test]
    fn degraded_ec_resolution_invariants(
        k in 2u8..6,
        m in 1u8..4,
        chunk_len in 1u32..4_000,
        fail_shard in 0usize..6,
        read_off_ppm in 0u32..1000,
        read_len in 1u32..10_000,
    ) {
        let k = k as usize;
        let m = m as usize;
        let fail_shard = fail_shard % (k + m);
        let stripe_len = chunk_len * k as u32;
        let data: Vec<ReplicaCoord> =
            (0..k).map(|j| ReplicaCoord { node: j as u32, addr: (j as u64) * 0x10_0000 }).collect();
        let parities: Vec<ReplicaCoord> =
            (k..k + m).map(|j| ReplicaCoord { node: j as u32, addr: (j as u64) * 0x10_0000 }).collect();
        let mut map = ExtentMap::new();
        map.record(ExtentRecord::Ec {
            offset: 0,
            len: stripe_len,
            chunk_len,
            scheme: RsScheme::new(k as u8, m as u8),
            data: data.clone(),
            parities,
        });
        // Offset strictly inside the stripe, so the clamped length ≥ 1.
        let read_off = (read_off_ppm as u64 * (stripe_len as u64 - 1)) / 1000;
        let read_len = read_len.min(stripe_len - read_off as u32);
        let failed: HashSet<u32> = [fail_shard as u32].into();
        let plan = map.resolve(read_off, read_len, &failed).expect("resolve");
        prop_assert!(coverage(&plan).iter().all(|&c| c == 1));
        let failed_is_needed_data = fail_shard < k && {
            let cs = fail_shard as u64 * chunk_len as u64;
            let ce = cs + chunk_len as u64;
            read_off < ce && read_off + read_len as u64 > cs
        };
        let degraded: Vec<_> = plan
            .pieces
            .iter()
            .filter_map(|p| match p {
                ReadPiece::Degraded { fetch, copy, .. } => Some((fetch.clone(), copy.clone())),
                _ => None,
            })
            .collect();
        if failed_is_needed_data {
            prop_assert_eq!(plan.degraded_stripes, 1);
            prop_assert_eq!(degraded.len(), 1);
            let (fetch, copy) = &degraded[0];
            prop_assert_eq!(fetch.len(), k);
            let idxs: HashSet<usize> = fetch.iter().map(|(i, _)| *i).collect();
            prop_assert_eq!(idxs.len(), k);
            prop_assert!(!idxs.contains(&fail_shard), "failed shard not fetched");
            prop_assert!(copy.iter().all(|c| c.chunk == fail_shard));
            // No direct piece touches the failed node.
            for p in &plan.pieces {
                if let ReadPiece::Direct { coord, .. } = p {
                    prop_assert!(coord.node != fail_shard as u32);
                }
            }
        } else {
            prop_assert_eq!(plan.degraded_stripes, 0);
            prop_assert!(degraded.is_empty());
        }
    }
}
