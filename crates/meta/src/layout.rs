//! Striped file layouts.
//!
//! A file's bytes are distributed round-robin in `chunk_size` units over
//! `stripe_width` storage nodes, generalizing the seed's single-node
//! placement (a width-1 stripe). The layout is pure metadata: it maps a
//! logical byte extent to the per-node extents the client must write,
//! which the control plane then turns into concrete addresses.

/// How a file wants to be striped (requested at create time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutSpec {
    /// Number of storage nodes the file stripes over (≥ 1).
    pub stripe_width: u32,
    /// Bytes per stripe unit.
    pub chunk_size: u32,
}

impl LayoutSpec {
    /// The seed's behavior: whole file on one node.
    pub const SINGLE: LayoutSpec = LayoutSpec {
        stripe_width: 1,
        chunk_size: u32::MAX,
    };

    pub fn striped(stripe_width: u32, chunk_size: u32) -> LayoutSpec {
        assert!(stripe_width >= 1 && chunk_size >= 1);
        LayoutSpec {
            stripe_width,
            chunk_size,
        }
    }
}

impl Default for LayoutSpec {
    fn default() -> LayoutSpec {
        LayoutSpec::SINGLE
    }
}

/// A concrete layout: the spec bound to an ordered set of storage nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StripedLayout {
    pub chunk_size: u32,
    /// Storage node ids in stripe order; `len()` is the stripe width.
    pub nodes: Vec<u32>,
}

/// One contiguous piece of a logical extent, landing on a single node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeExtent {
    /// Storage node this piece goes to.
    pub node: u32,
    /// Index of the stripe unit within the file (offset / chunk_size).
    pub stripe_index: u64,
    /// Logical byte offset of this piece within the file.
    pub file_offset: u64,
    /// Length of this piece in bytes.
    pub len: u32,
}

impl StripedLayout {
    /// Width-1 layout: everything on `node` (the seed's placement).
    pub fn single(node: u32) -> StripedLayout {
        StripedLayout {
            chunk_size: u32::MAX,
            nodes: vec![node],
        }
    }

    pub fn new(spec: LayoutSpec, nodes: Vec<u32>) -> StripedLayout {
        assert_eq!(
            nodes.len(),
            spec.stripe_width as usize,
            "layout needs exactly stripe_width nodes"
        );
        StripedLayout {
            chunk_size: spec.chunk_size,
            nodes,
        }
    }

    pub fn stripe_width(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Node holding the stripe unit at `stripe_index`.
    pub fn node_of(&self, stripe_index: u64) -> u32 {
        self.nodes[(stripe_index % self.nodes.len() as u64) as usize]
    }

    /// Split the logical extent `[offset, offset + len)` into per-node
    /// pieces, in file order. Width-1 layouts return a single extent.
    pub fn extents(&self, offset: u64, len: u32) -> Vec<StripeExtent> {
        if len == 0 {
            return vec![StripeExtent {
                node: self.node_of(0),
                stripe_index: 0,
                file_offset: offset,
                len: 0,
            }];
        }
        let chunk = self.chunk_size as u64;
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len as u64;
        while cur < end {
            let stripe_index = cur / chunk;
            let within = cur % chunk;
            let take = (chunk - within).min(end - cur) as u32;
            out.push(StripeExtent {
                node: self.node_of(stripe_index),
                stripe_index,
                file_offset: cur,
                len: take,
            });
            cur += take as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layout_is_one_extent() {
        let l = StripedLayout::single(9);
        let e = l.extents(0, 1 << 20);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].node, 9);
        assert_eq!(e[0].len, 1 << 20);
    }

    #[test]
    fn striping_round_robins_chunks() {
        let l = StripedLayout::new(LayoutSpec::striped(3, 1000), vec![4, 5, 6]);
        let e = l.extents(0, 3500);
        assert_eq!(
            e.iter().map(|x| (x.node, x.len)).collect::<Vec<_>>(),
            vec![(4, 1000), (5, 1000), (6, 1000), (4, 500)]
        );
        assert_eq!(e[3].stripe_index, 3);
    }

    #[test]
    fn unaligned_offset_splits_at_chunk_boundary() {
        let l = StripedLayout::new(LayoutSpec::striped(2, 4096), vec![7, 8]);
        let e = l.extents(4000, 5000);
        // 96 bytes finish chunk 0 (node 7), 4096 fill chunk 1 (node 8),
        // 808 start chunk 2 (node 7 again).
        assert_eq!(
            e.iter().map(|x| (x.node, x.len)).collect::<Vec<_>>(),
            vec![(7, 96), (8, 4096), (7, 808)]
        );
        assert_eq!(e[0].file_offset, 4000);
        assert_eq!(e[2].file_offset, 4000 + 96 + 4096);
    }

    #[test]
    fn zero_length_extent_well_defined() {
        let l = StripedLayout::new(LayoutSpec::striped(2, 64), vec![1, 2]);
        let e = l.extents(128, 0);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].len, 0);
    }
}
