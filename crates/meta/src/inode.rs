//! Inodes: the unit of the hierarchical namespace.
//!
//! Every entry — file or directory — is an inode with a stable id and a
//! monotonically increasing version. Versions are the cache-coherence
//! currency: any mutation of an inode (or of a directory's entry set)
//! bumps its version, and client caches compare versions to detect
//! staleness (see [`crate::cache`]).

use std::collections::BTreeMap;

use crate::layout::StripedLayout;
use nadfs_wire::{BcastStrategy, RsScheme};

/// Stable inode id. The root directory is always [`ROOT_INO`].
pub type InodeId = u64;

/// The root directory's inode id.
pub const ROOT_INO: InodeId = 1;

/// What kind of object an inode names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InodeKind {
    Dir,
    File,
}

/// Resiliency policy attached to a file by the metadata service.
///
/// (Lives here rather than in the control plane so the namespace can hand
/// out complete file metadata; `nadfs-core` re-exports it.)
#[derive(Clone, Debug, PartialEq)]
pub enum FilePolicy {
    /// Plain writes (authentication only).
    Plain,
    /// k-way replication with the given broadcast schedule.
    Replicated { k: u8, strategy: BcastStrategy },
    /// Reed-Solomon erasure coding.
    ErasureCoded { scheme: RsScheme },
}

/// The externally visible attributes of an inode (what `stat` returns).
#[derive(Clone, Debug, PartialEq)]
pub struct InodeAttr {
    pub ino: InodeId,
    pub kind: InodeKind,
    /// Logical file size in bytes (0 for directories).
    pub size: u64,
    /// Bumped on every mutation of this inode.
    pub version: u64,
    /// Directories: entry count. Files: always 1 (no hard links yet).
    pub nlink: u32,
    /// Last-mutation timestamp, nanoseconds of simulated time.
    pub mtime_ns: u64,
}

/// Directory payload.
#[derive(Clone, Debug, Default)]
pub struct DirNode {
    /// Sorted so `readdir` is deterministic.
    pub entries: BTreeMap<String, InodeId>,
}

/// File payload: where the bytes live and under which policy.
#[derive(Clone, Debug)]
pub struct FileNode {
    pub layout: StripedLayout,
    pub policy: FilePolicy,
}

/// Kind-specific inode payload.
#[derive(Clone, Debug)]
pub enum InodeBody {
    Dir(DirNode),
    File(FileNode),
}

/// A namespace entry: attributes plus kind-specific payload. Every inode
/// carries its parent and entry name, so paths reconstruct in O(depth).
#[derive(Clone, Debug)]
pub struct Inode {
    pub attr: InodeAttr,
    pub body: InodeBody,
    /// Parent directory (the root's parent is itself).
    pub parent: InodeId,
    /// This inode's entry name in the parent ("" for the root).
    pub name: String,
}

impl Inode {
    pub fn new_dir(ino: InodeId, parent: InodeId, now_ns: u64) -> Inode {
        Inode {
            attr: InodeAttr {
                ino,
                kind: InodeKind::Dir,
                size: 0,
                version: 1,
                nlink: 0,
                mtime_ns: now_ns,
            },
            body: InodeBody::Dir(DirNode {
                entries: BTreeMap::new(),
            }),
            parent,
            name: String::new(),
        }
    }

    pub fn new_file(ino: InodeId, layout: StripedLayout, policy: FilePolicy, now_ns: u64) -> Inode {
        Inode {
            attr: InodeAttr {
                ino,
                kind: InodeKind::File,
                size: 0,
                version: 1,
                nlink: 1,
                mtime_ns: now_ns,
            },
            body: InodeBody::File(FileNode { layout, policy }),
            parent: ROOT_INO, // set for real by the namespace on insert
            name: String::new(),
        }
    }

    pub fn dir(&self) -> Option<&DirNode> {
        match &self.body {
            InodeBody::Dir(d) => Some(d),
            InodeBody::File(_) => None,
        }
    }

    pub fn dir_mut(&mut self) -> Option<&mut DirNode> {
        match &mut self.body {
            InodeBody::Dir(d) => Some(d),
            InodeBody::File(_) => None,
        }
    }

    pub fn file(&self) -> Option<&FileNode> {
        match &self.body {
            InodeBody::File(f) => Some(f),
            InodeBody::Dir(_) => None,
        }
    }
}
