//! Client-side metadata cache with version-based invalidation.
//!
//! Each client keeps a path → entry map filled by lookup responses. A hit
//! answers locally; a miss costs a control-plane round-trip. Coherence
//! uses the namespace's versions two ways:
//!
//! * **Callbacks**: the control plane pushes invalidation records to every
//!   registered cache when a mutation lands (the paper's control services
//!   are shared state, so this models an AFS/NFSv4-style callback channel;
//!   SwitchFS pushes the same information from the switch).
//! * **Version checks**: any response observed with a newer version than
//!   the cached one evicts the stale entry (defense in depth — a callback
//!   race cannot resurrect old metadata).
//!
//! The cache is also *write-back* for file attributes: size/mtime updates
//! from local writes are buffered and only flushed to the control plane in
//! batches, so a write storm does not pay one metadata round-trip per
//! write.

use std::collections::HashMap;

use crate::inode::{InodeAttr, InodeId, InodeKind};
use crate::layout::StripedLayout;

/// One cached path resolution.
#[derive(Clone, Debug)]
pub struct CachedEntry {
    pub ino: InodeId,
    pub kind: InodeKind,
    /// Inode version observed when the entry was filled.
    pub version: u64,
    pub size: u64,
    /// File layout, if the entry is a file.
    pub layout: Option<StripedLayout>,
}

impl CachedEntry {
    pub fn from_attr(attr: &InodeAttr, layout: Option<StripedLayout>) -> CachedEntry {
        CachedEntry {
            ino: attr.ino,
            kind: attr.kind,
            version: attr.version,
            size: attr.size,
            layout,
        }
    }
}

/// Buffered (not yet flushed) local attribute mutation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirtyAttr {
    /// Bytes appended locally since the last flush.
    pub appended: u64,
    pub mtime_ns: u64,
}

/// Observable cache behavior (asserted by tests, reported by benches).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by callbacks or version checks.
    pub invalidations: u64,
    /// Local attr updates absorbed without a round-trip.
    pub writeback_absorbed: u64,
    /// Flush batches sent to the control plane.
    pub writeback_flushes: u64,
}

/// The per-client cache.
#[derive(Default)]
pub struct MetaCache {
    entries: HashMap<String, CachedEntry>,
    dirty: HashMap<InodeId, DirtyAttr>,
    pub stats: CacheStats,
}

impl MetaCache {
    pub fn new() -> MetaCache {
        MetaCache::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a path; counts a hit or a miss.
    pub fn get(&mut self, path: &str) -> Option<CachedEntry> {
        match self.entries.get(path) {
            Some(e) => {
                self.stats.hits += 1;
                Some(e.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching hit/miss counters.
    pub fn peek(&self, path: &str) -> Option<&CachedEntry> {
        self.entries.get(path)
    }

    pub fn insert(&mut self, path: impl Into<String>, entry: CachedEntry) {
        self.entries.insert(path.into(), entry);
    }

    /// Version check: drop the entry if `observed_version` is newer than
    /// what we cached. Returns true if the entry was evicted.
    pub fn note_version(&mut self, path: &str, observed_version: u64) -> bool {
        if let Some(e) = self.entries.get(path) {
            if observed_version > e.version {
                self.entries.remove(path);
                self.stats.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Callback: a single path changed (create/unlink target, file attrs).
    pub fn invalidate_path(&mut self, path: &str) {
        if self.entries.remove(path).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Callback: everything at or under `prefix` changed (rename/unlink of
    /// a directory). `prefix` is a path, not a string prefix: `/a` must
    /// not invalidate `/ab`.
    pub fn invalidate_subtree(&mut self, prefix: &str) {
        let before = self.entries.len();
        self.entries.retain(|p, _| {
            !(p == prefix
                || (p.len() > prefix.len()
                    && p.starts_with(prefix)
                    && p.as_bytes()[prefix.len()] == b'/'))
        });
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Write-back: absorb a local append without a round-trip. The caller
    /// flushes via [`MetaCache::take_dirty`] when a batch boundary or a
    /// dependent read arrives.
    pub fn buffer_append(&mut self, ino: InodeId, bytes: u64, now_ns: u64) {
        let d = self.dirty.entry(ino).or_default();
        d.appended += bytes;
        d.mtime_ns = now_ns;
        self.stats.writeback_absorbed += 1;
    }

    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Drain buffered attr updates for flushing to the control plane.
    pub fn take_dirty(&mut self) -> Vec<(InodeId, DirtyAttr)> {
        if self.dirty.is_empty() {
            return Vec::new();
        }
        self.stats.writeback_flushes += 1;
        self.dirty.drain().collect()
    }

    pub fn clear(&mut self) {
        let n = self.entries.len();
        self.entries.clear();
        self.stats.invalidations += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inode::InodeKind;

    fn entry(ino: u64, version: u64) -> CachedEntry {
        CachedEntry {
            ino,
            kind: InodeKind::File,
            version,
            size: 0,
            layout: None,
        }
    }

    #[test]
    fn hits_and_misses_counted() {
        let mut c = MetaCache::new();
        assert!(c.get("/a").is_none());
        c.insert("/a", entry(2, 1));
        assert!(c.get("/a").is_some());
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn newer_version_evicts() {
        let mut c = MetaCache::new();
        c.insert("/a", entry(2, 3));
        assert!(!c.note_version("/a", 3), "same version keeps the entry");
        assert!(c.note_version("/a", 4), "newer version evicts");
        assert!(c.peek("/a").is_none());
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn subtree_invalidation_respects_component_boundaries() {
        let mut c = MetaCache::new();
        c.insert("/a", entry(2, 1));
        c.insert("/a/f", entry(3, 1));
        c.insert("/a/sub/g", entry(4, 1));
        c.insert("/ab", entry(5, 1));
        c.invalidate_subtree("/a");
        assert!(c.peek("/a").is_none());
        assert!(c.peek("/a/f").is_none());
        assert!(c.peek("/a/sub/g").is_none());
        assert!(c.peek("/ab").is_some(), "/ab is not under /a");
        assert_eq!(c.stats.invalidations, 3);
    }

    #[test]
    fn writeback_batches() {
        let mut c = MetaCache::new();
        c.buffer_append(7, 100, 1);
        c.buffer_append(7, 100, 2);
        c.buffer_append(8, 50, 3);
        assert_eq!(c.dirty_count(), 2);
        let mut d = c.take_dirty();
        d.sort_by_key(|(ino, _)| *ino);
        assert_eq!(d[0].0, 7);
        assert_eq!(d[0].1.appended, 200);
        assert_eq!(d[1].1.appended, 50);
        assert_eq!(c.stats.writeback_absorbed, 3);
        assert_eq!(c.stats.writeback_flushes, 1);
        assert!(c.take_dirty().is_empty(), "empty flush is free");
        assert_eq!(c.stats.writeback_flushes, 1);
    }
}
