//! File extent maps: where every committed byte range physically lives.
//!
//! The layout ([`crate::layout::StripedLayout`]) answers "where *would*
//! bytes at this offset go"; the extent map answers "where *did* they go"
//! — concrete `(node, addr)` coordinates recorded as writes complete, the
//! missing half a read path needs. Records are kept in commit order and
//! resolution walks them newest-first, so an overwrite shadows the ranges
//! it covers without any eager splitting.
//!
//! [`ExtentMap::resolve`] turns a logical byte range into a [`ReadPlan`]:
//! direct per-node fetches for healthy data, replica failover for
//! replicated extents, and — for erasure-coded stripes whose data chunk
//! sits on a failed node — a degraded-fetch piece naming the k surviving
//! shards to pull and the chunk ranges to copy out of the reconstruction.
//!
//! The map is also the unit the background repair pipeline re-homes:
//! [`ExtentMap::affected_records`] finds the records a failed node holds
//! shards of, and [`ExtentMap::rehome`] rewrites those shard coordinates
//! to their re-protected spare locations, bumping the map's generation so
//! cached read plans can be recognized as stale.

use std::collections::HashSet;

use nadfs_wire::{ReplicaCoord, RsScheme};

use crate::error::MetaError;

/// One committed write, as the read path needs to see it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtentRecord {
    /// A plain extent on one node (one stripe unit of a striped write, or
    /// a whole single-node write).
    Plain {
        offset: u64,
        len: u32,
        coord: ReplicaCoord,
    },
    /// The same bytes on every replica (any one can serve a read).
    Replicated {
        offset: u64,
        len: u32,
        replicas: Vec<ReplicaCoord>,
    },
    /// An erasure-coded stripe: k data chunks of `chunk_len` bytes
    /// (zero-padded past `len`) plus m parities.
    Ec {
        offset: u64,
        len: u32,
        chunk_len: u32,
        scheme: RsScheme,
        data: Vec<ReplicaCoord>,
        parities: Vec<ReplicaCoord>,
    },
}

impl ExtentRecord {
    /// Every `(node, addr)` coordinate this record references, paired with
    /// its shard slot: EC shard index (data `0..k`, parity `k..k+m`),
    /// replica index, or `0` for a plain extent.
    pub fn shard_coords(&self) -> Vec<(usize, ReplicaCoord)> {
        match self {
            ExtentRecord::Plain { coord, .. } => vec![(0, *coord)],
            ExtentRecord::Replicated { replicas, .. } => {
                replicas.iter().copied().enumerate().collect()
            }
            ExtentRecord::Ec { data, parities, .. } => {
                data.iter().chain(parities).copied().enumerate().collect()
            }
        }
    }

    /// Does any shard of this record live on `node`? (Allocation-free:
    /// this sits in the failure-scan loop over every committed record.)
    pub fn references_node(&self, node: u32) -> bool {
        match self {
            ExtentRecord::Plain { coord, .. } => coord.node == node,
            ExtentRecord::Replicated { replicas, .. } => replicas.iter().any(|c| c.node == node),
            ExtentRecord::Ec { data, parities, .. } => {
                data.iter().chain(parities).any(|c| c.node == node)
            }
        }
    }

    /// Physical bytes one shard slot of this record occupies on its node:
    /// the full extent for plain, the full copy for a replica, one chunk
    /// for an EC shard (data and parity chunks are the same size). This
    /// is the unit the hosted-capacity ledger charges per coordinate.
    pub fn shard_len(&self) -> u32 {
        match self {
            ExtentRecord::Plain { len, .. } | ExtentRecord::Replicated { len, .. } => *len,
            ExtentRecord::Ec { chunk_len, .. } => *chunk_len,
        }
    }

    fn offset(&self) -> u64 {
        match self {
            ExtentRecord::Plain { offset, .. }
            | ExtentRecord::Replicated { offset, .. }
            | ExtentRecord::Ec { offset, .. } => *offset,
        }
    }

    fn len(&self) -> u32 {
        match self {
            ExtentRecord::Plain { len, .. }
            | ExtentRecord::Replicated { len, .. }
            | ExtentRecord::Ec { len, .. } => *len,
        }
    }
}

/// A copy out of a reconstructed erasure-coded data chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkCopy {
    /// Data chunk index within the stripe (0..k).
    pub chunk: usize,
    /// Byte offset within the chunk.
    pub chunk_off: u32,
    pub len: u32,
    /// Destination offset within the read buffer.
    pub dest_off: u32,
}

/// One piece of a resolved read.
#[derive(Clone, Debug)]
pub enum ReadPiece {
    /// Never-written range: reads as zeros, nothing to fetch.
    Hole { dest_off: u32, len: u32 },
    /// Healthy bytes at a concrete coordinate: one fetch, lands at
    /// `dest_off`.
    Direct {
        coord: ReplicaCoord,
        len: u32,
        dest_off: u32,
    },
    /// Degraded erasure-coded stripe: fetch the k surviving shards listed
    /// in `fetch` (shard index, coordinate), reconstruct, then serve the
    /// `copy` ranges from the recovered data chunks. `rec` identifies the
    /// underlying extent record so the repair queue can promote it.
    Degraded {
        rec: usize,
        scheme: RsScheme,
        chunk_len: u32,
        fetch: Vec<(usize, ReplicaCoord)>,
        copy: Vec<ChunkCopy>,
    },
}

/// A fully resolved read: every byte of `[0, len)` in the destination
/// buffer is covered by exactly one piece (holes included).
#[derive(Clone, Debug)]
pub struct ReadPlan {
    pub pieces: Vec<ReadPiece>,
    /// Length actually served (requests past EOF are clamped by the
    /// caller before resolution).
    pub len: u32,
    /// Stripes that need reconstruction.
    pub degraded_stripes: u32,
    /// The extent map's generation when this plan was built — the
    /// staleness key for anything caching the fetched bytes (a commit or
    /// repair re-homing bumps it, so a cached plan or payload tagged with
    /// an older generation is recognizably stale).
    pub generation: u64,
}

/// What one [`ExtentMap::compact`] pass did: how many fully-shadowed
/// records were dropped, and where every surviving record moved.
#[derive(Clone, Debug)]
pub struct CompactionResult {
    /// Records dropped because newer writes cover every byte they held.
    pub dropped: usize,
    /// `remap[old_id]` is the record's new id, or `None` if it was
    /// dropped. Anything holding positional record ids (repair tasks,
    /// cached degraded plans) must be rewritten through this.
    pub remap: Vec<Option<usize>>,
}

/// Per-file map of committed extents.
#[derive(Clone, Debug, Default)]
pub struct ExtentMap {
    records: Vec<ExtentRecord>,
    /// Bumped on every mutation (record or repair re-homing): the
    /// staleness currency for anything caching resolved placements.
    generation: u64,
}

impl ExtentMap {
    pub fn new() -> ExtentMap {
        ExtentMap::default()
    }

    /// Record one committed write. Later records shadow earlier ones over
    /// any range they overlap.
    pub fn record(&mut self, rec: ExtentRecord) {
        if rec.len() > 0 {
            self.records.push(rec);
            self.generation += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The committed records, in commit order (index = record id).
    pub fn records(&self) -> &[ExtentRecord] {
        &self.records
    }

    /// Mutation counter: bumped by [`Self::record`] and [`Self::rehome`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record ids of every extent with at least one shard on `node` —
    /// what a node failure puts on the repair queue.
    pub fn affected_records(&self, node: u32) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.references_node(node))
            .map(|(i, _)| i)
            .collect()
    }

    /// Commit a repair: rewrite the shard slots of record `rec` to their
    /// re-protected coordinates and bump the generation. Slot numbering
    /// follows [`ExtentRecord::shard_coords`]. Out-of-range record or
    /// slot ids are a typed error (a stale repair task, e.g. after the
    /// file was truncated out from under the queue).
    pub fn rehome(
        &mut self,
        rec: usize,
        replacements: &[(usize, ReplicaCoord)],
    ) -> Result<(), MetaError> {
        let record = self.records.get_mut(rec).ok_or(MetaError::NotFound)?;
        let slots = match record {
            ExtentRecord::Plain { .. } => 1,
            ExtentRecord::Replicated { replicas, .. } => replicas.len(),
            ExtentRecord::Ec { data, parities, .. } => data.len() + parities.len(),
        };
        // Validate every slot before touching any: a rejected repair must
        // leave the record (and the generation) exactly as it was.
        if replacements.iter().any(|&(slot, _)| slot >= slots) {
            return Err(MetaError::NotFound);
        }
        for &(slot, coord) in replacements {
            let target = match record {
                ExtentRecord::Plain { coord: c, .. } => c,
                ExtentRecord::Replicated { replicas, .. } => &mut replicas[slot],
                ExtentRecord::Ec { data, parities, .. } => {
                    let k = data.len();
                    if slot < k {
                        &mut data[slot]
                    } else {
                        &mut parities[slot - k]
                    }
                }
            };
            *target = coord;
        }
        if !replacements.is_empty() {
            self.generation += 1;
        }
        Ok(())
    }

    /// Drop every record whose byte range is fully shadowed by newer
    /// writes (overwrite-heavy workloads otherwise accumulate one record
    /// per write forever, and resolution walks all of them). Survivors
    /// keep their commit order, so resolution is byte-for-byte identical;
    /// only the positional record ids change, reported through the
    /// returned remap. Bumps the generation when anything was dropped —
    /// cached plans carry record ids, so they must be recognizably stale.
    pub fn compact(&mut self) -> CompactionResult {
        // Newest-first coverage walk: a record survives iff some byte of
        // its range is not covered by the union of newer records' ranges.
        // `covered` is a sorted list of disjoint intervals.
        let mut covered: Vec<(u64, u64)> = Vec::new();
        let mut keep = vec![false; self.records.len()];
        for (i, rec) in self.records.iter().enumerate().rev() {
            let (start, end) = (rec.offset(), rec.offset() + rec.len() as u64);
            let mut cursor = start;
            let mut visible = false;
            for &(cs, ce) in covered.iter() {
                if ce <= cursor {
                    continue;
                }
                if cs >= end {
                    break;
                }
                if cs > cursor {
                    visible = true; // an uncovered gap inside our range
                    break;
                }
                cursor = ce;
                if cursor >= end {
                    break;
                }
            }
            if cursor < end {
                visible = true;
            }
            keep[i] = visible;
            // Merge [start, end) into the covered set.
            let mut merged = Vec::with_capacity(covered.len() + 1);
            let (mut ns, mut ne) = (start, end);
            let mut placed = false;
            for &(cs, ce) in covered.iter() {
                if ce < ns {
                    merged.push((cs, ce));
                } else if cs > ne {
                    if !placed {
                        merged.push((ns, ne));
                        placed = true;
                    }
                    merged.push((cs, ce));
                } else {
                    ns = ns.min(cs);
                    ne = ne.max(ce);
                }
            }
            if !placed {
                merged.push((ns, ne));
            }
            covered = merged;
        }
        let mut remap = vec![None; self.records.len()];
        let mut next = 0usize;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = Some(next);
                next += 1;
            }
        }
        let dropped = self.records.len() - next;
        if dropped > 0 {
            let mut idx = 0;
            self.records.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
            self.generation += 1;
        }
        CompactionResult { dropped, remap }
    }

    /// Resolve the logical range `[offset, offset + len)` into fetchable
    /// pieces, routing around the nodes in `failed`.
    pub fn resolve(
        &self,
        offset: u64,
        len: u32,
        failed: &HashSet<u32>,
    ) -> Result<ReadPlan, MetaError> {
        if len == 0 {
            // Zero-length request (e.g. clamped entirely past EOF): an
            // empty plan, not a zero-length hole piece.
            return Ok(ReadPlan {
                pieces: Vec::new(),
                len: 0,
                degraded_stripes: 0,
                generation: self.generation,
            });
        }
        let mut pieces = Vec::new();
        let mut degraded_stripes = 0u32;
        // Uncovered subranges of the request; newest records carve them
        // up first, so every byte is served by the latest write.
        let mut gaps = vec![(offset, offset + len as u64)];
        for (rec_id, rec) in self.records.iter().enumerate().rev() {
            if gaps.is_empty() {
                break;
            }
            let ro = rec.offset();
            let rend = ro + rec.len() as u64;
            let mut next_gaps = Vec::with_capacity(gaps.len());
            // All segments this record serves are collected first and
            // emitted through ONE pieces_for call: a degraded EC stripe
            // shadowed in the middle by a newer write must still fetch
            // its k survivors (and reconstruct) exactly once.
            let mut segments = Vec::new();
            for &(gs, ge) in &gaps {
                let is = gs.max(ro);
                let ie = ge.min(rend);
                if is >= ie {
                    next_gaps.push((gs, ge));
                    continue;
                }
                if gs < is {
                    next_gaps.push((gs, is));
                }
                if ie < ge {
                    next_gaps.push((ie, ge));
                }
                segments.push((is, ie));
            }
            if !segments.is_empty() {
                Self::pieces_for(
                    rec,
                    rec_id,
                    &segments,
                    offset,
                    failed,
                    &mut pieces,
                    &mut degraded_stripes,
                )?;
            }
            gaps = next_gaps;
        }
        for (gs, ge) in gaps {
            pieces.push(ReadPiece::Hole {
                dest_off: (gs - offset) as u32,
                len: (ge - gs) as u32,
            });
        }
        Ok(ReadPlan {
            pieces,
            len,
            degraded_stripes,
            generation: self.generation,
        })
    }

    /// Emit the pieces serving `segments` (disjoint subranges of `rec`)
    /// into a read starting at logical `base`. One call covers every
    /// segment the record serves, so an EC record emits at most one
    /// degraded fetch no matter how a newer write split the request.
    #[allow(clippy::too_many_arguments)]
    fn pieces_for(
        rec: &ExtentRecord,
        rec_id: usize,
        segments: &[(u64, u64)],
        base: u64,
        failed: &HashSet<u32>,
        pieces: &mut Vec<ReadPiece>,
        degraded_stripes: &mut u32,
    ) -> Result<(), MetaError> {
        match rec {
            ExtentRecord::Plain { offset, coord, .. } => {
                if failed.contains(&coord.node) {
                    return Err(MetaError::DataUnavailable { node: coord.node });
                }
                for &(is, ie) in segments {
                    pieces.push(ReadPiece::Direct {
                        coord: ReplicaCoord {
                            node: coord.node,
                            addr: coord.addr + (is - offset),
                        },
                        len: (ie - is) as u32,
                        dest_off: (is - base) as u32,
                    });
                }
            }
            ExtentRecord::Replicated {
                offset, replicas, ..
            } => {
                let Some(coord) = replicas.iter().find(|c| !failed.contains(&c.node)) else {
                    return Err(MetaError::DataUnavailable {
                        node: replicas.first().map_or(0, |c| c.node),
                    });
                };
                for &(is, ie) in segments {
                    pieces.push(ReadPiece::Direct {
                        coord: ReplicaCoord {
                            node: coord.node,
                            addr: coord.addr + (is - offset),
                        },
                        len: (ie - is) as u32,
                        dest_off: (is - base) as u32,
                    });
                }
            }
            ExtentRecord::Ec {
                offset,
                chunk_len,
                scheme,
                data,
                parities,
                ..
            } => {
                let cl = *chunk_len as u64;
                let mut copy = Vec::new();
                for &(is, ie) in segments {
                    let first = (is - offset) / cl;
                    let last = (ie - 1 - offset) / cl;
                    for j in first..=last {
                        let cs = offset + j * cl;
                        let s = is.max(cs);
                        let e = ie.min(cs + cl);
                        debug_assert!(s < e, "chunk overlap is nonempty by construction");
                        let chunk = j as usize;
                        let within = (s - cs) as u32;
                        if failed.contains(&data[chunk].node) {
                            copy.push(ChunkCopy {
                                chunk,
                                chunk_off: within,
                                len: (e - s) as u32,
                                dest_off: (s - base) as u32,
                            });
                        } else {
                            pieces.push(ReadPiece::Direct {
                                coord: ReplicaCoord {
                                    node: data[chunk].node,
                                    addr: data[chunk].addr + within as u64,
                                },
                                len: (e - s) as u32,
                                dest_off: (s - base) as u32,
                            });
                        }
                    }
                }
                if !copy.is_empty() {
                    // Reconstruction inputs: the first k surviving shards
                    // in shard-index order (data first, then parity).
                    let k = scheme.k as usize;
                    let fetch: Vec<(usize, ReplicaCoord)> = data
                        .iter()
                        .chain(parities)
                        .enumerate()
                        .filter(|(_, c)| !failed.contains(&c.node))
                        .map(|(i, c)| (i, *c))
                        .take(k)
                        .collect();
                    if fetch.len() < k {
                        return Err(MetaError::TooManyFailures {
                            stripe_offset: *offset,
                        });
                    }
                    pieces.push(ReadPiece::Degraded {
                        rec: rec_id,
                        scheme: *scheme,
                        chunk_len: *chunk_len,
                        fetch,
                        copy,
                    });
                    *degraded_stripes += 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(node: u32, addr: u64) -> ReplicaCoord {
        ReplicaCoord { node, addr }
    }

    fn no_failures() -> HashSet<u32> {
        HashSet::new()
    }

    /// Every byte of the request is covered by exactly one piece.
    fn assert_partition(plan: &ReadPlan) {
        let mut covered = vec![0u32; plan.len as usize];
        let mut mark = |off: u32, len: u32| {
            for b in &mut covered[off as usize..(off + len) as usize] {
                *b += 1;
            }
        };
        for p in &plan.pieces {
            match p {
                ReadPiece::Hole { dest_off, len } => mark(*dest_off, *len),
                ReadPiece::Direct { dest_off, len, .. } => mark(*dest_off, *len),
                ReadPiece::Degraded { copy, .. } => {
                    for c in copy {
                        mark(c.dest_off, c.len);
                    }
                }
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "coverage not a partition: {covered:?}"
        );
    }

    #[test]
    fn unwritten_range_is_a_hole() {
        let m = ExtentMap::new();
        let plan = m.resolve(100, 50, &no_failures()).expect("resolve");
        assert_eq!(plan.pieces.len(), 1);
        assert!(matches!(
            plan.pieces[0],
            ReadPiece::Hole {
                dest_off: 0,
                len: 50
            }
        ));
        assert_partition(&plan);
    }

    #[test]
    fn later_writes_shadow_earlier_ones() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Plain {
            offset: 0,
            len: 100,
            coord: coord(1, 0x1000),
        });
        m.record(ExtentRecord::Plain {
            offset: 40,
            len: 20,
            coord: coord(2, 0x2000),
        });
        let plan = m.resolve(0, 100, &no_failures()).expect("resolve");
        assert_partition(&plan);
        // The overwritten middle must come from node 2.
        let mid = plan
            .pieces
            .iter()
            .find_map(|p| match p {
                ReadPiece::Direct {
                    coord,
                    dest_off: 40,
                    len,
                } => Some((coord.node, coord.addr, *len)),
                _ => None,
            })
            .expect("shadowing piece");
        assert_eq!(mid, (2, 0x2000, 20));
    }

    #[test]
    fn plain_subrange_offsets_into_the_extent() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Plain {
            offset: 1000,
            len: 4096,
            coord: coord(3, 0x8000),
        });
        let plan = m.resolve(1500, 100, &no_failures()).expect("resolve");
        let ReadPiece::Direct {
            coord: c,
            len,
            dest_off,
        } = &plan.pieces[0]
        else {
            panic!("direct piece");
        };
        assert_eq!((c.node, c.addr, *len, *dest_off), (3, 0x8000 + 500, 100, 0));
    }

    #[test]
    fn plain_on_failed_node_is_unavailable() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Plain {
            offset: 0,
            len: 10,
            coord: coord(7, 0),
        });
        let failed: HashSet<u32> = [7].into();
        assert_eq!(
            m.resolve(0, 10, &failed).unwrap_err(),
            MetaError::DataUnavailable { node: 7 }
        );
    }

    #[test]
    fn replicated_fails_over_to_a_live_replica() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Replicated {
            offset: 0,
            len: 100,
            replicas: vec![coord(4, 0x100), coord(5, 0x200), coord(6, 0x300)],
        });
        let failed: HashSet<u32> = [4].into();
        let plan = m.resolve(10, 50, &failed).expect("resolve");
        let ReadPiece::Direct { coord: c, .. } = &plan.pieces[0] else {
            panic!("direct piece");
        };
        assert_eq!((c.node, c.addr), (5, 0x200 + 10));
        let all: HashSet<u32> = [4, 5, 6].into();
        assert_eq!(
            m.resolve(0, 1, &all).unwrap_err(),
            MetaError::DataUnavailable { node: 4 }
        );
    }

    #[test]
    fn ec_healthy_read_splits_per_chunk() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Ec {
            offset: 0,
            len: 3000,
            chunk_len: 1000,
            scheme: RsScheme::new(3, 2),
            data: vec![coord(1, 0x1000), coord(2, 0x2000), coord(3, 0x3000)],
            parities: vec![coord(4, 0x4000), coord(5, 0x5000)],
        });
        // Cross-chunk range: tail of chunk 0, all of chunk 1, head of 2.
        let plan = m.resolve(500, 2000, &no_failures()).expect("resolve");
        assert_partition(&plan);
        assert_eq!(plan.degraded_stripes, 0);
        let directs: Vec<(u32, u64, u32, u32)> = plan
            .pieces
            .iter()
            .map(|p| match p {
                ReadPiece::Direct {
                    coord,
                    len,
                    dest_off,
                } => (coord.node, coord.addr, *len, *dest_off),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            directs,
            vec![
                (1, 0x1000 + 500, 500, 0),
                (2, 0x2000, 1000, 500),
                (3, 0x3000, 500, 1500),
            ]
        );
    }

    #[test]
    fn ec_failed_data_node_goes_degraded_with_k_survivors() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Ec {
            offset: 0,
            len: 3000,
            chunk_len: 1000,
            scheme: RsScheme::new(3, 2),
            data: vec![coord(1, 0x1000), coord(2, 0x2000), coord(3, 0x3000)],
            parities: vec![coord(4, 0x4000), coord(5, 0x5000)],
        });
        let failed: HashSet<u32> = [2].into();
        let plan = m.resolve(0, 3000, &failed).expect("resolve");
        assert_partition(&plan);
        assert_eq!(plan.degraded_stripes, 1);
        let deg = plan
            .pieces
            .iter()
            .find_map(|p| match p {
                ReadPiece::Degraded { fetch, copy, .. } => Some((fetch.clone(), copy.clone())),
                _ => None,
            })
            .expect("degraded piece");
        let (fetch, copy) = deg;
        let idxs: Vec<usize> = fetch.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![0, 2, 3], "first k survivors, shard order");
        assert_eq!(
            copy,
            vec![ChunkCopy {
                chunk: 1,
                chunk_off: 0,
                len: 1000,
                dest_off: 1000
            }]
        );
    }

    #[test]
    fn ec_failed_parity_node_does_not_degrade_reads() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Ec {
            offset: 0,
            len: 2000,
            chunk_len: 1000,
            scheme: RsScheme::new(2, 1),
            data: vec![coord(1, 0x1000), coord(2, 0x2000)],
            parities: vec![coord(3, 0x3000)],
        });
        let failed: HashSet<u32> = [3].into();
        let plan = m.resolve(0, 2000, &failed).expect("resolve");
        assert_eq!(plan.degraded_stripes, 0);
        assert_partition(&plan);
    }

    #[test]
    fn ec_too_many_failures_rejected() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Ec {
            offset: 0,
            len: 2000,
            chunk_len: 1000,
            scheme: RsScheme::new(2, 1),
            data: vec![coord(1, 0x1000), coord(2, 0x2000)],
            parities: vec![coord(3, 0x3000)],
        });
        let failed: HashSet<u32> = [1, 3].into();
        assert_eq!(
            m.resolve(0, 2000, &failed).unwrap_err(),
            MetaError::TooManyFailures { stripe_offset: 0 }
        );
    }

    #[test]
    fn shadowed_degraded_stripe_fetches_survivors_once() {
        // An EC stripe overwritten in the middle by a newer plain write:
        // the request splits into two segments of the old stripe, but the
        // degraded fetch + reconstruction must happen exactly once.
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Ec {
            offset: 0,
            len: 3000,
            chunk_len: 1000,
            scheme: RsScheme::new(3, 2),
            data: vec![coord(1, 0x1000), coord(2, 0x2000), coord(3, 0x3000)],
            parities: vec![coord(4, 0x4000), coord(5, 0x5000)],
        });
        m.record(ExtentRecord::Plain {
            offset: 200,
            len: 400,
            coord: coord(6, 0x6000),
        });
        let failed: HashSet<u32> = [1].into();
        let plan = m.resolve(0, 3000, &failed).expect("resolve");
        assert_partition(&plan);
        assert_eq!(plan.degraded_stripes, 1, "one physical stripe degraded");
        let degraded: Vec<_> = plan
            .pieces
            .iter()
            .filter(|p| matches!(p, ReadPiece::Degraded { .. }))
            .collect();
        assert_eq!(degraded.len(), 1, "survivors fetched once, not per segment");
        let ReadPiece::Degraded { copy, .. } = degraded[0] else {
            unreachable!();
        };
        // Both segments of the failed chunk are served by that one fetch.
        assert_eq!(
            copy,
            &vec![
                ChunkCopy {
                    chunk: 0,
                    chunk_off: 0,
                    len: 200,
                    dest_off: 0
                },
                ChunkCopy {
                    chunk: 0,
                    chunk_off: 600,
                    len: 400,
                    dest_off: 600
                },
            ]
        );
    }

    #[test]
    fn affected_records_finds_every_policy_kind() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Plain {
            offset: 0,
            len: 10,
            coord: coord(1, 0),
        });
        m.record(ExtentRecord::Replicated {
            offset: 10,
            len: 10,
            replicas: vec![coord(2, 0), coord(3, 0)],
        });
        m.record(ExtentRecord::Ec {
            offset: 20,
            len: 20,
            chunk_len: 10,
            scheme: RsScheme::new(2, 1),
            data: vec![coord(4, 0), coord(5, 0)],
            parities: vec![coord(3, 0x100)],
        });
        assert_eq!(m.affected_records(3), vec![1, 2], "replica and parity");
        assert_eq!(m.affected_records(1), vec![0]);
        assert!(m.affected_records(9).is_empty());
    }

    #[test]
    fn rehome_rewrites_shards_and_bumps_generation() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Ec {
            offset: 0,
            len: 2000,
            chunk_len: 1000,
            scheme: RsScheme::new(2, 1),
            data: vec![coord(1, 0x1000), coord(2, 0x2000)],
            parities: vec![coord(3, 0x3000)],
        });
        let g0 = m.generation();
        // Re-home data shard 1 and the parity (shard 2) to spares.
        m.rehome(0, &[(1, coord(7, 0x7000)), (2, coord(8, 0x8000))])
            .expect("rehome");
        assert_eq!(m.generation(), g0 + 1, "repair commit bumps generation");
        let failed: HashSet<u32> = [2].into();
        let plan = m.resolve(0, 2000, &failed).expect("resolve");
        assert_eq!(plan.degraded_stripes, 0, "shard no longer on node 2");
        assert!(plan.pieces.iter().any(
            |p| matches!(p, ReadPiece::Direct { coord, .. } if coord.node == 7),
            // the re-homed shard serves from the spare
        ));
        // Stale slot / record ids are typed errors, not panics.
        assert_eq!(
            m.rehome(0, &[(5, coord(9, 0))]).unwrap_err(),
            MetaError::NotFound
        );
        assert_eq!(
            m.rehome(3, &[(0, coord(9, 0))]).unwrap_err(),
            MetaError::NotFound
        );
        // A rejected batch is atomic: the valid slot is NOT applied and
        // the generation does not move.
        let g = m.generation();
        assert_eq!(
            m.rehome(0, &[(0, coord(11, 0xB000)), (9, coord(12, 0xC000))])
                .unwrap_err(),
            MetaError::NotFound
        );
        assert_eq!(m.generation(), g, "partial application never happens");
        let plan = m.resolve(0, 2000, &HashSet::new()).expect("resolve");
        assert!(
            !plan
                .pieces
                .iter()
                .any(|p| matches!(p, ReadPiece::Direct { coord, .. } if coord.node == 11)),
            "slot 0 untouched by the rejected batch"
        );
    }

    #[test]
    fn degraded_pieces_carry_their_record_id() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Plain {
            offset: 0,
            len: 100,
            coord: coord(9, 0),
        });
        m.record(ExtentRecord::Ec {
            offset: 100,
            len: 2000,
            chunk_len: 1000,
            scheme: RsScheme::new(2, 1),
            data: vec![coord(1, 0x1000), coord(2, 0x2000)],
            parities: vec![coord(3, 0x3000)],
        });
        let failed: HashSet<u32> = [1].into();
        let plan = m.resolve(100, 2000, &failed).expect("resolve");
        let rec = plan
            .pieces
            .iter()
            .find_map(|p| match p {
                ReadPiece::Degraded { rec, .. } => Some(*rec),
                _ => None,
            })
            .expect("degraded piece");
        assert_eq!(rec, 1, "the EC record's commit-order id");
    }

    #[test]
    fn compact_drops_fully_shadowed_records_and_remaps() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Plain {
            offset: 0,
            len: 100,
            coord: coord(1, 0x1000),
        }); // fully shadowed by the two writes below
        m.record(ExtentRecord::Plain {
            offset: 0,
            len: 60,
            coord: coord(2, 0x2000),
        });
        m.record(ExtentRecord::Plain {
            offset: 50,
            len: 50,
            coord: coord(3, 0x3000),
        });
        m.record(ExtentRecord::Ec {
            offset: 200,
            len: 2000,
            chunk_len: 1000,
            scheme: RsScheme::new(2, 1),
            data: vec![coord(4, 0x4000), coord(5, 0x5000)],
            parities: vec![coord(6, 0x6000)],
        });
        let before = m.resolve(0, 2200, &no_failures()).expect("resolve");
        let g0 = m.generation();
        let res = m.compact();
        assert_eq!(res.dropped, 1);
        assert_eq!(res.remap, vec![None, Some(0), Some(1), Some(2)]);
        assert_eq!(m.len(), 3);
        assert!(m.generation() > g0, "dropping records bumps the generation");
        let after = m.resolve(0, 2200, &no_failures()).expect("resolve");
        // Byte-for-byte identical resolution.
        let owner = |plan: &ReadPlan| -> Vec<Option<(u32, u64)>> {
            let mut v = vec![None; plan.len as usize];
            for p in &plan.pieces {
                if let ReadPiece::Direct {
                    coord,
                    len,
                    dest_off,
                } = p
                {
                    for d in 0..*len {
                        v[(*dest_off + d) as usize] = Some((coord.node, coord.addr + d as u64));
                    }
                }
            }
            v
        };
        assert_eq!(owner(&before), owner(&after));
        // Idempotent: nothing left to drop.
        let res2 = m.compact();
        assert_eq!(res2.dropped, 0);
        assert_eq!(m.generation(), g0 + 1, "no-op compaction leaves it alone");
    }

    #[test]
    fn compact_keeps_partially_visible_records() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Plain {
            offset: 0,
            len: 100,
            coord: coord(1, 0),
        });
        m.record(ExtentRecord::Plain {
            offset: 10,
            len: 80,
            coord: coord(2, 0),
        }); // the head and tail of record 0 still show through
        let res = m.compact();
        assert_eq!(res.dropped, 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn partial_coverage_mixes_extent_and_hole() {
        let mut m = ExtentMap::new();
        m.record(ExtentRecord::Plain {
            offset: 0,
            len: 100,
            coord: coord(1, 0),
        });
        let plan = m.resolve(50, 100, &no_failures()).expect("resolve");
        assert_partition(&plan);
        assert!(plan.pieces.iter().any(|p| matches!(
            p,
            ReadPiece::Hole {
                dest_off: 50,
                len: 50
            }
        )));
    }
}
