//! The hierarchical namespace: a versioned inode tree with POSIX-flavored
//! directory operations.
//!
//! Paths are absolute (`/a/b/c`), components are non-empty and contain no
//! `/`. Every mutation bumps the affected inode versions and the global
//! `change_seq`, which client caches use for invalidation. Rename follows
//! POSIX: the target may be replaced if it is a file or an empty
//! directory, and a directory can never be moved into its own subtree.

use std::collections::HashMap;

use crate::error::MetaError;
use crate::inode::{FilePolicy, Inode, InodeAttr, InodeBody, InodeId, InodeKind, ROOT_INO};
use crate::layout::StripedLayout;

type Result<T> = std::result::Result<T, MetaError>;

/// Split and validate an absolute path into components.
pub fn split_path(path: &str) -> Result<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(MetaError::InvalidPath);
    }
    let mut parts = Vec::new();
    for comp in path.split('/').skip(1) {
        if comp.is_empty() {
            // Allow a single trailing slash ("/a/b/"), reject "//".
            continue;
        }
        if comp == "." || comp == ".." {
            return Err(MetaError::InvalidPath);
        }
        parts.push(comp);
    }
    Ok(parts)
}

/// Parent path + final component, e.g. `/a/b/c` → (`["a","b"]`, `"c"`).
fn split_parent(path: &str) -> Result<(Vec<&str>, String)> {
    let mut parts = split_path(path)?;
    let Some(last) = parts.pop() else {
        return Err(MetaError::InvalidPath); // "/" has no parent entry
    };
    Ok((parts, last.to_string()))
}

/// The namespace service state.
pub struct Namespace {
    inodes: HashMap<InodeId, Inode>,
    next_ino: InodeId,
    /// Global mutation counter; bumped once per successful mutation.
    pub change_seq: u64,
}

impl Default for Namespace {
    fn default() -> Self {
        Namespace::new()
    }
}

impl Namespace {
    pub fn new() -> Namespace {
        let mut inodes = HashMap::new();
        inodes.insert(ROOT_INO, Inode::new_dir(ROOT_INO, ROOT_INO, 0));
        Namespace {
            inodes,
            next_ino: ROOT_INO + 1,
            change_seq: 0,
        }
    }

    pub fn inode(&self, ino: InodeId) -> Result<&Inode> {
        self.inodes.get(&ino).ok_or(MetaError::NotFound)
    }

    fn inode_mut(&mut self, ino: InodeId) -> Result<&mut Inode> {
        self.inodes.get_mut(&ino).ok_or(MetaError::NotFound)
    }

    /// Resolve a path to an inode id.
    pub fn resolve(&self, path: &str) -> Result<InodeId> {
        let parts = split_path(path)?;
        let mut cur = ROOT_INO;
        for comp in parts {
            let node = self.inode(cur)?;
            let dir = node.dir().ok_or(MetaError::NotADirectory)?;
            cur = *dir.entries.get(comp).ok_or(MetaError::NotFound)?;
        }
        Ok(cur)
    }

    /// `stat`: attributes of the entry at `path`.
    pub fn lookup(&self, path: &str) -> Result<InodeAttr> {
        let ino = self.resolve(path)?;
        Ok(self.inode(ino)?.attr.clone())
    }

    /// Attributes plus layout/policy for a file path.
    pub fn lookup_file(&self, path: &str) -> Result<(InodeAttr, StripedLayout, FilePolicy)> {
        let ino = self.resolve(path)?;
        let node = self.inode(ino)?;
        let f = node.file().ok_or(MetaError::IsADirectory)?;
        Ok((node.attr.clone(), f.layout.clone(), f.policy.clone()))
    }

    fn touch(&mut self, ino: InodeId, now_ns: u64) {
        if let Some(n) = self.inodes.get_mut(&ino) {
            n.attr.version += 1;
            n.attr.mtime_ns = now_ns;
        }
    }

    fn insert_child(
        &mut self,
        parent: InodeId,
        name: &str,
        mut child: Inode,
        now_ns: u64,
    ) -> Result<InodeAttr> {
        let ino = child.attr.ino;
        child.parent = parent;
        child.name = name.to_string();
        {
            let p = self.inode_mut(parent)?;
            let dir = p.dir_mut().ok_or(MetaError::NotADirectory)?;
            if dir.entries.contains_key(name) {
                return Err(MetaError::AlreadyExists);
            }
            dir.entries.insert(name.to_string(), ino);
            p.attr.nlink = p.dir().expect("dir").entries.len() as u32;
        }
        let attr = child.attr.clone();
        self.inodes.insert(ino, child);
        self.touch(parent, now_ns);
        self.change_seq += 1;
        Ok(attr)
    }

    /// Create a directory. The parent must already exist.
    pub fn mkdir(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr> {
        let (parents, name) = split_parent(path)?;
        let parent = self.resolve_parts(&parents)?;
        let ino = self.next_ino;
        self.next_ino += 1;
        self.insert_child(parent, &name, Inode::new_dir(ino, parent, now_ns), now_ns)
    }

    /// Create every missing directory along `path` (like `mkdir -p`).
    pub fn mkdir_p(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr> {
        let parts = split_path(path)?;
        let mut cur = String::new();
        let mut attr = self.inode(ROOT_INO)?.attr.clone();
        for comp in parts {
            cur.push('/');
            cur.push_str(comp);
            attr = match self.lookup(&cur) {
                Ok(a) if a.kind == InodeKind::Dir => a,
                Ok(_) => return Err(MetaError::NotADirectory),
                Err(MetaError::NotFound) => self.mkdir(&cur, now_ns)?,
                Err(e) => return Err(e),
            };
        }
        Ok(attr)
    }

    /// Create a file with the given layout and policy.
    pub fn create(
        &mut self,
        path: &str,
        layout: StripedLayout,
        policy: FilePolicy,
        now_ns: u64,
    ) -> Result<InodeAttr> {
        let (parents, name) = split_parent(path)?;
        let parent = self.resolve_parts(&parents)?;
        let ino = self.next_ino;
        self.next_ino += 1;
        self.insert_child(
            parent,
            &name,
            Inode::new_file(ino, layout, policy, now_ns),
            now_ns,
        )
    }

    /// List a directory: (name, attributes) in name order.
    pub fn readdir(&self, path: &str) -> Result<Vec<(String, InodeAttr)>> {
        let ino = self.resolve(path)?;
        let node = self.inode(ino)?;
        let dir = node.dir().ok_or(MetaError::NotADirectory)?;
        dir.entries
            .iter()
            .map(|(name, &child)| Ok((name.clone(), self.inode(child)?.attr.clone())))
            .collect()
    }

    /// Is `candidate` inside the subtree rooted at `root` (or equal)?
    fn is_descendant(&self, candidate: InodeId, root: InodeId) -> bool {
        let mut cur = candidate;
        loop {
            if cur == root {
                return true;
            }
            if cur == ROOT_INO {
                return false; // reached the top of the tree
            }
            let Some(node) = self.inodes.get(&cur) else {
                return false;
            };
            cur = node.parent;
        }
    }

    /// Rename `from` to `to`. Replaces an existing target only if it is a
    /// file or an empty directory; refuses to move a directory into its
    /// own subtree. Returns the inode id of a replaced target (if any) so
    /// callers can drop their own per-file state for it.
    pub fn rename(&mut self, from: &str, to: &str, now_ns: u64) -> Result<Option<InodeId>> {
        let (from_parents, from_name) = split_parent(from)?;
        let (to_parents, to_name) = split_parent(to)?;
        let from_parent = self.resolve_parts(&from_parents)?;
        let to_parent = self.resolve_parts(&to_parents)?;

        let moved = {
            let p = self.inode(from_parent)?;
            let dir = p.dir().ok_or(MetaError::NotADirectory)?;
            *dir.entries.get(&from_name).ok_or(MetaError::NotFound)?
        };

        // A directory cannot move under itself (includes from == to dirs).
        if self.inode(moved)?.dir().is_some() && self.is_descendant(to_parent, moved) {
            return Err(MetaError::RenameIntoDescendant);
        }

        // Validate (and collect) the replacement target, if any.
        let replaced = {
            let p = self.inode(to_parent)?;
            let dir = p.dir().ok_or(MetaError::NotADirectory)?;
            match dir.entries.get(&to_name) {
                None => None,
                Some(&t) if t == moved => return Ok(None), // no-op rename
                Some(&t) => {
                    let tn = self.inode(t)?;
                    match &tn.body {
                        InodeBody::File(_) => Some(t),
                        InodeBody::Dir(d) if d.entries.is_empty() => Some(t),
                        InodeBody::Dir(_) => return Err(MetaError::NotEmpty),
                    }
                }
            }
        };

        // Commit: unlink from the source dir, link into the target dir.
        {
            let p = self.inode_mut(from_parent)?;
            let dir = p.dir_mut().expect("dir");
            dir.entries.remove(&from_name);
            p.attr.nlink = p.dir().expect("dir").entries.len() as u32;
        }
        if let Some(t) = replaced {
            self.inodes.remove(&t);
        }
        {
            let p = self.inode_mut(to_parent)?;
            let dir = p.dir_mut().expect("dir");
            dir.entries.insert(to_name.clone(), moved);
            p.attr.nlink = p.dir().expect("dir").entries.len() as u32;
        }
        {
            let m = self.inode_mut(moved)?;
            m.parent = to_parent;
            m.name = to_name;
        }
        self.touch(from_parent, now_ns);
        if to_parent != from_parent {
            self.touch(to_parent, now_ns);
        }
        self.touch(moved, now_ns);
        self.change_seq += 1;
        Ok(replaced)
    }

    /// Full path of an inode, if it is still linked: walks the parent
    /// chain upward, O(depth).
    pub fn path_of(&self, ino: InodeId) -> Option<String> {
        if ino == ROOT_INO {
            return Some("/".to_string());
        }
        let mut parts: Vec<&str> = Vec::new();
        let mut cur = ino;
        while cur != ROOT_INO {
            let node = self.inodes.get(&cur)?;
            parts.push(node.name.as_str());
            cur = node.parent;
            if parts.len() > self.inodes.len() {
                return None; // corrupt parent chain; never a live inode
            }
        }
        parts.reverse();
        Some(format!("/{}", parts.join("/")))
    }

    /// Remove a file or an *empty* directory. Returns the removed attrs.
    pub fn unlink(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr> {
        let (parents, name) = split_parent(path)?;
        let parent = self.resolve_parts(&parents)?;
        let target = {
            let p = self.inode(parent)?;
            let dir = p.dir().ok_or(MetaError::NotADirectory)?;
            *dir.entries.get(&name).ok_or(MetaError::NotFound)?
        };
        if let Some(d) = self.inode(target)?.dir() {
            if !d.entries.is_empty() {
                return Err(MetaError::NotEmpty);
            }
        }
        {
            let p = self.inode_mut(parent)?;
            let dir = p.dir_mut().expect("dir");
            dir.entries.remove(&name);
            p.attr.nlink = p.dir().expect("dir").entries.len() as u32;
        }
        let removed = self.inodes.remove(&target).expect("inode").attr;
        self.touch(parent, now_ns);
        self.change_seq += 1;
        Ok(removed)
    }

    /// Grow a file's logical size (placement appends bytes). Returns the
    /// offset the appended extent starts at and the new version.
    pub fn append(&mut self, ino: InodeId, len: u64, now_ns: u64) -> Result<(u64, u64)> {
        let n = self.inode_mut(ino)?;
        if n.file().is_none() {
            return Err(MetaError::IsADirectory);
        }
        let start = n.attr.size;
        n.attr.size += len;
        n.attr.version += 1;
        n.attr.mtime_ns = now_ns;
        let v = n.attr.version;
        self.change_seq += 1;
        Ok((start, v))
    }

    fn resolve_parts(&self, parts: &[&str]) -> Result<InodeId> {
        let mut cur = ROOT_INO;
        for comp in parts {
            let node = self.inode(cur)?;
            let dir = node.dir().ok_or(MetaError::NotADirectory)?;
            cur = *dir.entries.get(*comp).ok_or(MetaError::NotFound)?;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::StripedLayout;

    fn ns() -> Namespace {
        Namespace::new()
    }

    fn file(ns: &mut Namespace, path: &str) -> InodeAttr {
        ns.create(path, StripedLayout::single(0), FilePolicy::Plain, 0)
            .expect("create")
    }

    #[test]
    fn mkdir_create_lookup_readdir() {
        let mut n = ns();
        n.mkdir("/a", 10).unwrap();
        n.mkdir("/a/b", 20).unwrap();
        let f = file(&mut n, "/a/b/f1");
        assert_eq!(f.kind, InodeKind::File);
        let a = n.lookup("/a/b/f1").unwrap();
        assert_eq!(a.ino, f.ino);
        let list = n.readdir("/a/b").unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].0, "f1");
        assert_eq!(n.lookup("/a").unwrap().nlink, 1);
    }

    #[test]
    fn lookup_miss_is_typed() {
        let n = ns();
        assert_eq!(n.lookup("/nope"), Err(MetaError::NotFound));
        assert_eq!(n.lookup("relative"), Err(MetaError::InvalidPath));
    }

    #[test]
    fn file_component_mid_path_is_not_a_directory() {
        let mut n = ns();
        file(&mut n, "/f");
        assert_eq!(n.lookup("/f/x"), Err(MetaError::NotADirectory));
        assert_eq!(n.mkdir("/f/d", 0), Err(MetaError::NotADirectory));
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut n = ns();
        file(&mut n, "/f");
        assert_eq!(
            n.create("/f", StripedLayout::single(0), FilePolicy::Plain, 0),
            Err(MetaError::AlreadyExists)
        );
        assert_eq!(n.mkdir("/f", 0), Err(MetaError::AlreadyExists));
    }

    #[test]
    fn rename_moves_subtree() {
        let mut n = ns();
        n.mkdir("/a", 0).unwrap();
        n.mkdir("/a/sub", 0).unwrap();
        file(&mut n, "/a/sub/f");
        n.mkdir("/b", 0).unwrap();
        n.rename("/a/sub", "/b/moved", 1).unwrap();
        assert_eq!(n.lookup("/a/sub"), Err(MetaError::NotFound));
        assert!(n.lookup("/b/moved/f").is_ok());
    }

    #[test]
    fn rename_into_own_descendant_rejected() {
        let mut n = ns();
        n.mkdir("/a", 0).unwrap();
        n.mkdir("/a/b", 0).unwrap();
        n.mkdir("/a/b/c", 0).unwrap();
        assert_eq!(
            n.rename("/a", "/a/b/c/a2", 1),
            Err(MetaError::RenameIntoDescendant)
        );
        // Renaming a dir onto a path directly inside itself is also caught.
        assert_eq!(
            n.rename("/a", "/a/b/x", 1),
            Err(MetaError::RenameIntoDescendant)
        );
        // An unrelated sibling move still works.
        n.mkdir("/d", 0).unwrap();
        n.rename("/a/b/c", "/d/c", 2).unwrap();
    }

    #[test]
    fn rename_replaces_file_and_empty_dir_only() {
        let mut n = ns();
        file(&mut n, "/src");
        file(&mut n, "/dst");
        n.rename("/src", "/dst", 1).unwrap(); // file over file: ok
        assert_eq!(n.lookup("/src"), Err(MetaError::NotFound));

        n.mkdir("/ed", 0).unwrap();
        file(&mut n, "/f2");
        n.rename("/f2", "/ed", 2).unwrap(); // file over empty dir: ok
        assert_eq!(n.lookup("/ed").unwrap().kind, InodeKind::File);

        n.mkdir("/full", 0).unwrap();
        file(&mut n, "/full/x");
        file(&mut n, "/f3");
        assert_eq!(n.rename("/f3", "/full", 3), Err(MetaError::NotEmpty));
    }

    #[test]
    fn rename_to_self_is_noop() {
        let mut n = ns();
        let f = file(&mut n, "/f");
        let seq = n.change_seq;
        n.rename("/f", "/f", 1).unwrap();
        assert_eq!(n.lookup("/f").unwrap().ino, f.ino);
        assert_eq!(n.change_seq, seq, "no-op rename does not mutate");
    }

    #[test]
    fn unlink_non_empty_dir_rejected() {
        let mut n = ns();
        n.mkdir("/d", 0).unwrap();
        file(&mut n, "/d/f");
        assert_eq!(n.unlink("/d", 1), Err(MetaError::NotEmpty));
        n.unlink("/d/f", 2).unwrap();
        n.unlink("/d", 3).unwrap();
        assert_eq!(n.lookup("/d"), Err(MetaError::NotFound));
    }

    #[test]
    fn unlink_missing_is_typed() {
        let mut n = ns();
        assert_eq!(n.unlink("/ghost", 0), Err(MetaError::NotFound));
    }

    #[test]
    fn versions_bump_on_every_mutation() {
        let mut n = ns();
        n.mkdir("/a", 0).unwrap();
        let v1 = n.lookup("/a").unwrap().version;
        file(&mut n, "/a/f");
        let v2 = n.lookup("/a").unwrap().version;
        assert!(v2 > v1, "creating an entry bumps the parent dir version");
        let fv1 = n.lookup("/a/f").unwrap().version;
        let ino = n.resolve("/a/f").unwrap();
        n.append(ino, 4096, 5).unwrap();
        let fa = n.lookup("/a/f").unwrap();
        assert!(fa.version > fv1);
        assert_eq!(fa.size, 4096);
    }

    #[test]
    fn path_of_tracks_renames_and_unlinks() {
        let mut n = ns();
        n.mkdir("/a", 0).unwrap();
        n.mkdir("/a/b", 0).unwrap();
        let f = file(&mut n, "/a/b/f");
        assert_eq!(n.path_of(f.ino).as_deref(), Some("/a/b/f"));
        assert_eq!(n.path_of(crate::inode::ROOT_INO).as_deref(), Some("/"));
        n.rename("/a/b", "/c", 1).unwrap();
        assert_eq!(n.path_of(f.ino).as_deref(), Some("/c/f"));
        n.unlink("/c/f", 2).unwrap();
        assert_eq!(n.path_of(f.ino), None);
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let mut n = ns();
        n.mkdir_p("/x/y/z", 0).unwrap();
        let v = n.lookup("/x/y/z").unwrap();
        let again = n.mkdir_p("/x/y/z", 1).unwrap();
        assert_eq!(v.ino, again.ino);
        file(&mut n, "/x/f");
        assert_eq!(n.mkdir_p("/x/f/q", 2), Err(MetaError::NotADirectory));
    }
}
