//! # nadfs-meta
//!
//! The metadata subsystem of the network-accelerated DFS: a hierarchical,
//! versioned namespace ([`namespace::Namespace`]) with POSIX-flavored
//! directory operations, striped per-file layouts ([`layout`])
//! generalizing the seed's single-node placement, a client-side metadata
//! cache with version-based invalidation ([`cache::MetaCache`]), and the
//! control-node service tying them together ([`service::MetadataService`]).
//!
//! The paper's offload building blocks (capabilities §IV, replication §V,
//! erasure coding §VI) assume a metadata service that resolves paths to
//! placements; this crate is that service, and the prerequisite for
//! sharded-metadata / in-network-coordination work (SwitchFS, AsyncFS —
//! arXiv:2410.08618) on the roadmap.

pub mod cache;
pub mod error;
pub mod extents;
pub mod inode;
pub mod layout;
pub mod namespace;
pub mod service;

pub use cache::{CacheStats, CachedEntry, DirtyAttr, MetaCache};
pub use error::MetaError;
pub use extents::{ChunkCopy, CompactionResult, ExtentMap, ExtentRecord, ReadPiece, ReadPlan};
pub use inode::{FilePolicy, Inode, InodeAttr, InodeId, InodeKind, ROOT_INO};
pub use layout::{LayoutSpec, StripeExtent, StripedLayout};
pub use namespace::{split_path, Namespace};
pub use service::{MetaEvent, MetaOpStats, MetadataService};
