//! Typed metadata-service errors.
//!
//! Every namespace operation returns `Result<_, MetaError>` so misses and
//! rejected operations are observable to callers (and propagate through
//! the client as failed jobs rather than silent drops or panics).

use std::fmt;

/// Why a metadata operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaError {
    /// No entry at the path (or no inode with the id).
    NotFound,
    /// A non-final path component resolved to a file.
    NotADirectory,
    /// The operation needs a file but the path is a directory.
    IsADirectory,
    /// Create/mkdir target already exists.
    AlreadyExists,
    /// Unlink/rename-replace target is a non-empty directory.
    NotEmpty,
    /// Rename would move a directory into its own subtree.
    RenameIntoDescendant,
    /// Malformed path (relative, empty component, trailing garbage).
    InvalidPath,
    /// A file id was presented that the layout service never issued.
    UnknownFile(u64),
    /// The byte range lives (only) on a storage node marked failed, and
    /// no replica or erasure-coded reconstruction can serve it.
    DataUnavailable { node: u32 },
    /// An erasure-coded stripe has fewer than k surviving shards.
    TooManyFailures { stripe_offset: u64 },
    /// Repair needs a spare storage node, but every node is either failed
    /// or already hosts a shard of the extent being re-protected.
    NoSpareNode,
    /// A cross-shard metadata transaction died mid-protocol (the
    /// coordinator crashed between the intent and commit records); shard
    /// recovery rolls the intent back and the operation never applied.
    TxAborted,
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::NotFound => write!(f, "no such file or directory"),
            MetaError::NotADirectory => write!(f, "not a directory"),
            MetaError::IsADirectory => write!(f, "is a directory"),
            MetaError::AlreadyExists => write!(f, "file exists"),
            MetaError::NotEmpty => write!(f, "directory not empty"),
            MetaError::RenameIntoDescendant => {
                write!(f, "cannot rename a directory into its own subtree")
            }
            MetaError::InvalidPath => write!(f, "invalid path"),
            MetaError::UnknownFile(id) => write!(f, "unknown file id {id}"),
            MetaError::DataUnavailable { node } => {
                write!(f, "data unavailable: storage node {node} is failed")
            }
            MetaError::TooManyFailures { stripe_offset } => {
                write!(
                    f,
                    "stripe at offset {stripe_offset} has fewer than k surviving shards"
                )
            }
            MetaError::NoSpareNode => {
                write!(f, "no spare storage node available for repair placement")
            }
            MetaError::TxAborted => {
                write!(f, "cross-shard metadata transaction aborted mid-flight")
            }
        }
    }
}

impl std::error::Error for MetaError {}
