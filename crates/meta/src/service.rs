//! The metadata service: namespace + layout allocation + traffic counters.
//!
//! This is what the control node runs. It owns the [`Namespace`], assigns
//! striped layouts over the cluster's storage nodes at create time
//! (rotating the stripe's starting node so load spreads), and counts every
//! client-visible operation — the round-trip ledger the client cache is
//! measured against.

use crate::cache::DirtyAttr;
use crate::error::MetaError;
use crate::inode::{FilePolicy, InodeAttr, InodeId};
use crate::layout::{LayoutSpec, StripedLayout};
use crate::namespace::Namespace;

type Result<T> = std::result::Result<T, MetaError>;

/// Control-plane round-trips, by operation. The sum is the number a
/// perfect client cache would shrink.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetaOpStats {
    pub lookups: u64,
    pub creates: u64,
    pub mkdirs: u64,
    pub readdirs: u64,
    pub renames: u64,
    pub unlinks: u64,
    pub attr_flushes: u64,
    /// Read-plan resolutions (the per-read control round-trip a client
    /// read cache exists to absorb).
    pub resolves: u64,
}

impl MetaOpStats {
    pub fn total(&self) -> u64 {
        self.lookups
            + self.creates
            + self.mkdirs
            + self.readdirs
            + self.renames
            + self.unlinks
            + self.attr_flushes
            + self.resolves
    }
}

/// A mutation event, published so the integration layer can fan out cache
/// invalidation callbacks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaEvent {
    /// A single path gained or changed an entry.
    Changed { path: String },
    /// A whole subtree moved or vanished; caches drop the prefix.
    SubtreeGone { path: String },
    /// `ino`'s extent map moved to `generation` (a committed write,
    /// overwrite, or repair re-homing): anything caching data or resolved
    /// placements tagged with an older generation must drop them.
    /// `generation == u64::MAX` means the file's data is gone entirely
    /// (unlink / rename-replace).
    LayoutChanged { ino: InodeId, generation: u64 },
    /// The control plane observed a sequential scan of `ino` and advises
    /// caches to prefetch `[offset, offset + len)` ahead of the reader.
    PrefetchHint { ino: InodeId, offset: u64, len: u32 },
}

/// The control node's metadata service.
pub struct MetadataService {
    pub ns: Namespace,
    storage_nodes: Vec<u32>,
    /// Rotates so consecutive creates start their stripes on different
    /// nodes (same role as the seed's round-robin `home`).
    next_home: usize,
    pub default_layout: LayoutSpec,
    pub stats: MetaOpStats,
    events: Vec<MetaEvent>,
}

impl MetadataService {
    pub fn new(storage_nodes: Vec<u32>) -> MetadataService {
        assert!(!storage_nodes.is_empty(), "need at least one storage node");
        MetadataService {
            ns: Namespace::new(),
            storage_nodes,
            next_home: 0,
            default_layout: LayoutSpec::SINGLE,
            stats: MetaOpStats::default(),
            events: Vec::new(),
        }
    }

    /// Build a concrete layout for a new file: `spec.stripe_width` nodes,
    /// round-robin from a rotating start.
    pub fn alloc_layout(&mut self, spec: LayoutSpec) -> StripedLayout {
        let n = self.storage_nodes.len();
        let width = (spec.stripe_width as usize).min(n);
        let home = self.next_home;
        self.next_home = (self.next_home + 1) % n;
        let nodes = (0..width)
            .map(|i| self.storage_nodes[(home + i) % n])
            .collect();
        StripedLayout {
            chunk_size: spec.chunk_size,
            nodes,
        }
    }

    /// Drain mutation events accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<MetaEvent> {
        std::mem::take(&mut self.events)
    }

    /// Entry mutations bump the parent directory's version too (nlink,
    /// mtime): publish a `Changed` for the parent path so cached parent
    /// attrs don't go stale.
    fn push_parent_changed(&mut self, path: &str) {
        if let Some(cut) = path.trim_end_matches('/').rfind('/') {
            let parent = if cut == 0 { "/" } else { &path[..cut] };
            self.events.push(MetaEvent::Changed {
                path: parent.to_string(),
            });
        }
    }

    pub fn lookup(&mut self, path: &str) -> Result<InodeAttr> {
        self.stats.lookups += 1;
        self.ns.lookup(path)
    }

    /// Lookup returning the layout too (what a client needs to write).
    pub fn lookup_file(&mut self, path: &str) -> Result<(InodeAttr, StripedLayout, FilePolicy)> {
        self.stats.lookups += 1;
        self.ns.lookup_file(path)
    }

    pub fn mkdir(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr> {
        self.stats.mkdirs += 1;
        let attr = self.ns.mkdir(path, now_ns)?;
        self.events.push(MetaEvent::Changed { path: path.into() });
        self.push_parent_changed(path);
        Ok(attr)
    }

    pub fn mkdir_p(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr> {
        self.stats.mkdirs += 1;
        let seq = self.ns.change_seq;
        let attr = self.ns.mkdir_p(path, now_ns)?;
        if self.ns.change_seq != seq {
            // Idempotent re-creates mutate nothing: no invalidation.
            self.events.push(MetaEvent::Changed { path: path.into() });
            self.push_parent_changed(path);
        }
        Ok(attr)
    }

    pub fn create(
        &mut self,
        path: &str,
        spec: LayoutSpec,
        policy: FilePolicy,
        now_ns: u64,
    ) -> Result<(InodeAttr, StripedLayout)> {
        self.stats.creates += 1;
        let layout = self.alloc_layout(spec);
        let attr = self.ns.create(path, layout.clone(), policy, now_ns)?;
        self.events.push(MetaEvent::Changed { path: path.into() });
        self.push_parent_changed(path);
        Ok((attr, layout))
    }

    pub fn readdir(&mut self, path: &str) -> Result<Vec<(String, InodeAttr)>> {
        self.stats.readdirs += 1;
        self.ns.readdir(path)
    }

    /// Rename; returns the inode id of a replaced target (if any) so the
    /// control plane can drop per-file placement state for it.
    pub fn rename(&mut self, from: &str, to: &str, now_ns: u64) -> Result<Option<InodeId>> {
        self.stats.renames += 1;
        let seq = self.ns.change_seq;
        let replaced = self.ns.rename(from, to, now_ns)?;
        if self.ns.change_seq != seq {
            // A no-op rename (same source and target) mutates nothing —
            // don't wipe every client's cached subtree for it.
            self.events
                .push(MetaEvent::SubtreeGone { path: from.into() });
            self.events.push(MetaEvent::SubtreeGone { path: to.into() });
            self.push_parent_changed(from);
            self.push_parent_changed(to);
        }
        Ok(replaced)
    }

    pub fn unlink(&mut self, path: &str, now_ns: u64) -> Result<InodeAttr> {
        self.stats.unlinks += 1;
        let attr = self.ns.unlink(path, now_ns)?;
        self.events
            .push(MetaEvent::SubtreeGone { path: path.into() });
        self.push_parent_changed(path);
        Ok(attr)
    }

    /// Note a layout-level change to `ino`'s data placement (extent
    /// re-homing by the repair pipeline): bump the inode's version so
    /// version checks see it, and publish `Changed` + `LayoutChanged`
    /// events so client caches drop stale entries (and stale data) through
    /// the ordinary callback channel. A file unlinked while its repair was
    /// in flight is a silent no-op.
    pub fn note_layout_change(&mut self, ino: InodeId, generation: u64, now_ns: u64) {
        if self.ns.append(ino, 0, now_ns).is_ok() {
            if let Some(path) = self.ns.path_of(ino) {
                self.events.push(MetaEvent::Changed { path });
            }
            self.events
                .push(MetaEvent::LayoutChanged { ino, generation });
        }
    }

    /// Note that `ino`'s extent map advanced to `generation` (a committed
    /// write): publishes only the `LayoutChanged` event. Namespace attrs
    /// are NOT touched — size/mtime ride the write-back attr flush — so a
    /// write storm does not bump inode versions per write; data caches
    /// keyed by the generation still invalidate precisely.
    pub fn note_extent_commit(&mut self, ino: InodeId, generation: u64) {
        self.events
            .push(MetaEvent::LayoutChanged { ino, generation });
    }

    /// Publish a prefetch advisory for a file under sequential scan; the
    /// integration layer fans it out to client read caches like an
    /// invalidation, but it only *warms* readahead, never drops data.
    pub fn note_prefetch_hint(&mut self, ino: InodeId, offset: u64, len: u32) {
        self.events
            .push(MetaEvent::PrefetchHint { ino, offset, len });
    }

    /// Note that `ino`'s data is gone entirely (unlink / rename-replace):
    /// data caches must drop the file no matter what generation they hold.
    pub fn note_extents_gone(&mut self, ino: InodeId) {
        self.events.push(MetaEvent::LayoutChanged {
            ino,
            generation: u64::MAX,
        });
    }

    /// Apply a client's write-back attr flush (one round-trip for the
    /// whole batch). Applied per entry in inode order so the outcome is
    /// deterministic; updates for files that vanished in the meantime
    /// (unlinked or replaced) are skipped, never blocking the rest of the
    /// batch. Each applied update publishes a `Changed` event so other
    /// clients' cached attrs are invalidated.
    pub fn flush_attrs(&mut self, updates: &[(InodeId, DirtyAttr)]) -> Result<()> {
        self.stats.attr_flushes += 1;
        let mut sorted: Vec<&(InodeId, DirtyAttr)> = updates.iter().collect();
        sorted.sort_by_key(|(ino, _)| *ino);
        for (ino, d) in sorted {
            match self.ns.append(*ino, d.appended, d.mtime_ns) {
                Ok(_) => {
                    if let Some(path) = self.ns.path_of(*ino) {
                        self.events.push(MetaEvent::Changed { path });
                    }
                }
                Err(MetaError::NotFound) => continue, // unlinked mid-batch
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_rotate_homes_and_cap_width() {
        let mut s = MetadataService::new(vec![10, 11, 12]);
        let a = s.alloc_layout(LayoutSpec::striped(2, 1 << 16));
        let b = s.alloc_layout(LayoutSpec::striped(2, 1 << 16));
        assert_eq!(a.nodes, vec![10, 11]);
        assert_eq!(b.nodes, vec![11, 12]);
        let wide = s.alloc_layout(LayoutSpec::striped(9, 4096));
        assert_eq!(wide.nodes.len(), 3, "width capped at cluster size");
    }

    #[test]
    fn ops_are_counted() {
        let mut s = MetadataService::new(vec![1]);
        s.mkdir("/d", 0).unwrap();
        s.create("/d/f", LayoutSpec::SINGLE, FilePolicy::Plain, 0)
            .unwrap();
        let _ = s.lookup("/d/f").unwrap();
        let _ = s.lookup("/d/missing");
        s.rename("/d/f", "/d/g", 1).unwrap();
        s.unlink("/d/g", 2).unwrap();
        assert_eq!(s.stats.mkdirs, 1);
        assert_eq!(s.stats.creates, 1);
        assert_eq!(s.stats.lookups, 2, "misses still cost a round-trip");
        assert_eq!(s.stats.renames, 1);
        assert_eq!(s.stats.unlinks, 1);
        assert_eq!(s.stats.total(), 6);
    }

    #[test]
    fn mutations_publish_invalidation_events() {
        let mut s = MetadataService::new(vec![1]);
        s.mkdir("/a", 0).unwrap();
        s.create("/a/f", LayoutSpec::SINGLE, FilePolicy::Plain, 0)
            .unwrap();
        s.rename("/a", "/b", 1).unwrap();
        let ev = s.take_events();
        assert!(ev.contains(&MetaEvent::SubtreeGone { path: "/a".into() }));
        assert!(ev.contains(&MetaEvent::SubtreeGone { path: "/b".into() }));
        // Entry mutations also invalidate the parent dir (version bump).
        assert!(ev.contains(&MetaEvent::Changed { path: "/a".into() }));
        assert!(ev.contains(&MetaEvent::Changed { path: "/".into() }));
        assert!(s.take_events().is_empty(), "events drain");
    }

    #[test]
    fn noop_mutations_publish_nothing() {
        let mut s = MetadataService::new(vec![1]);
        s.mkdir_p("/a/b", 0).unwrap();
        s.take_events();
        s.mkdir_p("/a/b", 1).unwrap(); // idempotent re-create
        s.create("/a/f", LayoutSpec::SINGLE, FilePolicy::Plain, 0)
            .unwrap();
        s.take_events();
        s.rename("/a/f", "/a/f", 2).unwrap(); // no-op rename
        assert!(
            s.take_events().is_empty(),
            "no-op mutations must not wipe client caches"
        );
        // The round-trips still count: the client did call the service.
        assert_eq!(s.stats.mkdirs, 2);
        assert_eq!(s.stats.renames, 1);
    }

    #[test]
    fn attr_flush_batches_appends() {
        let mut s = MetadataService::new(vec![1]);
        let (attr, _) = s
            .create("/f", LayoutSpec::SINGLE, FilePolicy::Plain, 0)
            .unwrap();
        let updates = vec![(
            attr.ino,
            crate::cache::DirtyAttr {
                appended: 8192,
                mtime_ns: 9,
            },
        )];
        s.flush_attrs(&updates).unwrap();
        assert_eq!(s.ns.lookup("/f").unwrap().size, 8192);
        assert_eq!(s.stats.attr_flushes, 1);
    }
}
