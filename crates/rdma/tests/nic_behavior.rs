//! End-to-end NIC behavior tests: raw writes, RPC, one-sided reads,
//! HyperLoop chains, the firmware EC engine, and MR protection.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use nadfs_gfec::ReedSolomon;
use nadfs_host::SharedMemory;
use nadfs_rdma::{AppTimer, EcEngine, EcEngineConfig, Nic, NicApp, NicConfig, NicCore};
use nadfs_simnet::{Ctx, Dur, Engine, Fabric, FabricConfig, NodeId, Time};
use nadfs_wire::{
    AckPkt, Capability, DfsHeader, DfsOp, EcInfo, EcRole, HlConfigPkt, MacKey, MsgId,
    ReadReqHeader, ReplicaCoord, Resiliency, Rights, RpcBody, RsScheme, Status, WriteReqHeader,
};

type Action = Box<dyn FnMut(&mut NicCore, &mut Ctx<'_>)>;

#[derive(Clone, Default)]
#[allow(clippy::type_complexity)]
struct Record {
    acks: Rc<RefCell<Vec<(Time, NodeId, AckPkt)>>>,
    rpcs: Rc<RefCell<Vec<(Time, NodeId, RpcBody, Bytes)>>>,
    reads: Rc<RefCell<Vec<(Time, u64)>>>,
}

/// Scriptable node software: timer tags trigger registered actions;
/// callbacks are recorded for assertions.
struct ScriptApp {
    rec: Record,
    actions: HashMap<u64, Action>,
}

impl NicApp for ScriptApp {
    fn on_rpc(
        &mut self,
        _nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        _msg: MsgId,
        body: RpcBody,
        data: Bytes,
    ) {
        self.rec
            .rpcs
            .borrow_mut()
            .push((ctx.now(), src, body, data));
    }
    fn on_ack(&mut self, _nic: &mut NicCore, ctx: &mut Ctx<'_>, src: NodeId, ack: AckPkt) {
        self.rec.acks.borrow_mut().push((ctx.now(), src, ack));
    }
    fn on_read_done(&mut self, _nic: &mut NicCore, ctx: &mut Ctx<'_>, token: u64) {
        self.rec.reads.borrow_mut().push((ctx.now(), token));
    }
    fn on_timer(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, tag: u64) {
        if let Some(a) = self.actions.get_mut(&tag) {
            a(nic, ctx);
        }
    }
}

struct Cluster {
    engine: Engine,
    records: Vec<Record>,
    memories: Vec<SharedMemory>,
    nic_ids: Vec<usize>,
}

/// Per-node setup applied to the NIC before installation.
type Setup = Box<dyn FnOnce(&mut NicCore)>;

fn build(
    n: usize,
    mut actions: Vec<HashMap<u64, Action>>,
    mut setups: Vec<Option<Setup>>,
    cfg: NicConfig,
) -> Cluster {
    let mut e = Engine::new();
    let fid = e.reserve_id();
    let ids: Vec<_> = (0..n).map(|_| e.reserve_id()).collect();
    let mut fab: Fabric<nadfs_wire::Frame> = Fabric::new(FabricConfig::default(), fid);
    let ports: Vec<_> = ids.iter().map(|&id| fab.register_node(id, None)).collect();
    e.install(fid, Box::new(fab));
    let mut records = Vec::new();
    let mut memories = Vec::new();
    for (i, (&id, port)) in ids.iter().zip(ports).enumerate() {
        let rec = Record::default();
        records.push(rec.clone());
        let app = ScriptApp {
            rec: records[i].clone(),
            actions: actions.get_mut(i).map(std::mem::take).unwrap_or_default(),
        };
        let mut nic = Nic::new(cfg.clone(), port, id, Box::new(app));
        if let Some(setup) = setups.get_mut(i).and_then(Option::take) {
            setup(&mut nic.core);
        }
        memories.push(nic.core.memory());
        e.install(id, Box::new(nic));
    }
    Cluster {
        engine: e,
        records,
        memories,
        nic_ids: ids,
    }
}

fn kick(c: &mut Cluster, node: usize, tag: u64, after: Dur) {
    c.engine
        .schedule(after, c.nic_ids[node], Box::new(AppTimer { tag }));
}

fn run(c: &mut Cluster, ms: u64) {
    c.engine.run_until(Time(Dur::from_ms(ms).ps()));
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
        .collect()
}

fn dfs_header(greq: u64, client: u32) -> DfsHeader {
    DfsHeader {
        tenant: 0,
        greq_id: greq,
        op: DfsOp::Write,
        client,
        capability: Capability::issue(&MacKey::from_seed(5), client, 1, Rights::RW, u64::MAX, 0),
    }
}

#[test]
fn raw_write_lands_and_acks() {
    let data = pattern(300_000, 3);
    let d2 = data.clone();
    let actions: Vec<HashMap<u64, Action>> = vec![
        HashMap::from([(
            1u64,
            Box::new(move |nic: &mut NicCore, ctx: &mut Ctx<'_>| {
                let wrh = WriteReqHeader {
                    target_addr: 0x20_000,
                    len: d2.len() as u32,
                    resiliency: Resiliency::None,
                };
                nic.send_write(
                    ctx,
                    1,
                    Some(dfs_header(42, 0)),
                    wrh,
                    Bytes::from(d2.clone()),
                );
            }) as Action,
        )]),
        HashMap::new(),
    ];
    let mut c = build(2, actions, vec![None, None], NicConfig::default());
    kick(&mut c, 0, 1, Dur::ZERO);
    run(&mut c, 10);
    let acks = c.records[0].acks.borrow();
    assert_eq!(acks.len(), 1, "client receives exactly one ack");
    assert_eq!(acks[0].2.status, Status::Ok);
    assert_eq!(acks[0].2.greq_id, Some(42));
    assert_eq!(c.memories[1].borrow().read(0x20_000, data.len()), data);
    // Write latency sanity: 300 kB at ~45 GB/s is ~6.7 us + overheads.
    let lat_us = acks[0].0.as_us();
    assert!(lat_us > 5.0 && lat_us < 30.0, "latency {lat_us} us");
}

#[test]
fn rpc_roundtrip_delivers_body_and_inline_data() {
    let payload = pattern(10_000, 9);
    let p2 = payload.clone();
    let actions: Vec<HashMap<u64, Action>> = vec![
        HashMap::from([(
            1u64,
            Box::new(move |nic: &mut NicCore, ctx: &mut Ctx<'_>| {
                let body = RpcBody::WriteReq {
                    dfs: dfs_header(7, 0),
                    wrh: WriteReqHeader {
                        target_addr: 0x40_000,
                        len: p2.len() as u32,
                        resiliency: Resiliency::None,
                    },
                    inline_data: true,
                    src_addr: 0,
                    chunk_off: 0,
                    full_len: p2.len() as u32,
                };
                nic.send_rpc(ctx, 1, body, Bytes::from(p2.clone()));
            }) as Action,
        )]),
        HashMap::new(),
    ];
    let mut c = build(2, actions, vec![None, None], NicConfig::default());
    kick(&mut c, 0, 1, Dur::ZERO);
    run(&mut c, 10);
    let rpcs = c.records[1].rpcs.borrow();
    assert_eq!(rpcs.len(), 1);
    let (_, src, body, data) = &rpcs[0];
    assert_eq!(*src, 0);
    assert_eq!(&data[..], &payload[..]);
    match body {
        RpcBody::WriteReq { dfs, wrh, .. } => {
            assert_eq!(dfs.greq_id, 7);
            assert_eq!(wrh.len, payload.len() as u32);
        }
        other => panic!("unexpected body {other:?}"),
    }
}

#[test]
fn one_sided_read_fetches_remote_bytes() {
    let stored = pattern(50_000, 1);
    let s2 = stored.clone();
    let setups: Vec<Option<Setup>> = vec![
        None,
        Some(Box::new(move |nic: &mut NicCore| {
            nic.memory().borrow_mut().write(0x9000, &s2);
        })),
    ];
    let actions: Vec<HashMap<u64, Action>> = vec![
        HashMap::from([(
            1u64,
            Box::new(|nic: &mut NicCore, ctx: &mut Ctx<'_>| {
                let rrh = ReadReqHeader {
                    addr: 0x9000,
                    len: 50_000,
                };
                nic.send_read(ctx, 1, rrh, None, 0x100_000, 77);
            }) as Action,
        )]),
        HashMap::new(),
    ];
    let mut c = build(2, actions, setups, NicConfig::default());
    kick(&mut c, 0, 1, Dur::ZERO);
    run(&mut c, 10);
    let reads = c.records[0].reads.borrow();
    assert_eq!(reads.len(), 1);
    assert_eq!(reads[0].1, 77);
    assert_eq!(c.memories[0].borrow().read(0x100_000, 50_000), stored);
}

#[test]
fn hyperloop_ring_replicates_and_tail_acks() {
    // Nodes: 0 = client, 1..=3 = ring. Chunked forwarding, tail acks.
    let total = 200_000u32;
    let chunk = 32 * 1024u32;
    let data = pattern(total as usize, 8);
    let d2 = data.clone();
    let base = 0x50_000u64;
    let mk_cfg = move |next: Option<ReplicaCoord>, ack: bool| HlConfigPkt {
        msg: MsgId::new(0, 0),
        greq_id: 99,
        local_addr: base,
        total_len: total,
        chunk,
        next,
        ack_client: ack,
        frag: 0,
        total_frags: 1,
    };
    let actions: Vec<HashMap<u64, Action>> = vec![
        HashMap::from([
            (
                1u64,
                Box::new(move |nic: &mut NicCore, ctx: &mut Ctx<'_>| {
                    // Configure the ring on all three nodes (parallel).
                    nic.send_hl_config(
                        ctx,
                        1,
                        mk_cfg(
                            Some(ReplicaCoord {
                                node: 2,
                                addr: base,
                            }),
                            false,
                        ),
                    );
                    nic.send_hl_config(
                        ctx,
                        2,
                        mk_cfg(
                            Some(ReplicaCoord {
                                node: 3,
                                addr: base,
                            }),
                            false,
                        ),
                    );
                    nic.send_hl_config(ctx, 3, mk_cfg(None, true));
                }) as Action,
            ),
            (
                2u64,
                Box::new(move |nic: &mut NicCore, ctx: &mut Ctx<'_>| {
                    let wrh = WriteReqHeader {
                        target_addr: base,
                        len: total,
                        resiliency: Resiliency::None,
                    };
                    nic.send_write(ctx, 1, None, wrh, Bytes::from(d2.clone()));
                }) as Action,
            ),
        ]),
        HashMap::new(),
        HashMap::new(),
        HashMap::new(),
    ];
    // Capture the interior ring nodes' buffer pools: chain forwarding
    // must draw its per-chunk buffers from the recycled ring, not the
    // allocator (the former alloc-per-hop).
    let pool2: Rc<RefCell<Option<nadfs_simnet::SharedBufPool>>> = Rc::new(RefCell::new(None));
    let p2 = pool2.clone();
    let setup2: Setup = Box::new(move |nic: &mut NicCore| {
        *p2.borrow_mut() = Some(nic.buf_pool());
    });
    let mut c = build(
        4,
        actions,
        vec![None, None, Some(setup2), None],
        NicConfig::default(),
    );
    kick(&mut c, 0, 1, Dur::ZERO);
    kick(&mut c, 0, 2, Dur::from_us(2)); // configs land first
    run(&mut c, 50);
    // Three config acks plus exactly one data ack from the ring tail.
    let acks = c.records[0].acks.borrow();
    assert_eq!(acks.len(), 4, "3 config acks + 1 tail ack");
    let data_acks: Vec<_> = acks.iter().filter(|a| a.2.greq_id.is_some()).collect();
    assert_eq!(data_acks.len(), 1, "exactly the tail acks the data write");
    assert_eq!(data_acks[0].2.greq_id, Some(99));
    assert_eq!(data_acks[0].1, 3, "the tail node sent the data ack");
    // All three replicas hold identical bytes.
    for node in 1..=3 {
        assert_eq!(
            c.memories[node].borrow().read(base, total as usize),
            data,
            "replica {node}"
        );
    }
    // Node 2's forwards (one buffer per chunk) recycle the chunk payloads
    // node 1 forwarded to it: steady-state chain forwarding stays off the
    // allocator.
    let stats = pool2
        .borrow()
        .as_ref()
        .expect("pool captured")
        .borrow()
        .stats();
    let n_chunks = total.div_ceil(chunk) as u64;
    assert_eq!(
        stats.gets, n_chunks,
        "one pooled buffer per forwarded chunk"
    );
    assert!(
        stats.hits >= n_chunks - 1,
        "chunk forwarding must recycle landed payloads (hits {}/{} gets)",
        stats.hits,
        stats.gets
    );
}

#[test]
fn firmware_ec_builds_correct_parity_rs_2_1() {
    // Nodes: 0 client, 1..=2 data, 3 parity. RS(2,1): parity = c0*d0 ^ c1*d1.
    let chunk_len = 60_000u32;
    let chunk0 = pattern(chunk_len as usize, 11);
    let chunk1 = pattern(chunk_len as usize, 23);
    let parity_base = 0x200_000u64;
    let data_base = 0x80_000u64;
    let scheme = RsScheme::new(2, 1);
    let (c0, c1) = (chunk0.clone(), chunk1.clone());
    let mk_ec = move |j: u8| {
        Resiliency::ErasureCode(EcInfo {
            scheme,
            role: EcRole::Data { chunk_idx: j },
            stripe: 5,
            parity_coords: vec![ReplicaCoord {
                node: 3,
                addr: parity_base,
            }],
        })
    };
    let ec_setup: Setup = Box::new(|nic: &mut NicCore| {
        nic.enable_firmware_ec(EcEngine::new(EcEngineConfig::default()));
    });
    let ec_setup2: Setup = Box::new(|nic: &mut NicCore| {
        nic.enable_firmware_ec(EcEngine::new(EcEngineConfig::default()));
    });
    let ec_setup3: Setup = Box::new(|nic: &mut NicCore| {
        nic.enable_firmware_ec(EcEngine::new(EcEngineConfig::default()));
    });
    let actions: Vec<HashMap<u64, Action>> = vec![
        HashMap::from([(
            1u64,
            Box::new(move |nic: &mut NicCore, ctx: &mut Ctx<'_>| {
                for (j, chunk) in [(0u8, c0.clone()), (1u8, c1.clone())] {
                    let wrh = WriteReqHeader {
                        target_addr: data_base,
                        len: chunk_len,
                        resiliency: mk_ec(j),
                    };
                    nic.send_write(
                        ctx,
                        1 + j as NodeId,
                        Some(dfs_header(500, 0)),
                        wrh,
                        Bytes::from(chunk),
                    );
                }
            }) as Action,
        )]),
        HashMap::new(),
        HashMap::new(),
        HashMap::new(),
    ];
    let mut c = build(
        4,
        actions,
        vec![None, Some(ec_setup), Some(ec_setup2), Some(ec_setup3)],
        NicConfig::default(),
    );
    kick(&mut c, 0, 1, Dur::ZERO);
    run(&mut c, 50);
    // Client gets 3 acks: two data chunks + the final parity.
    let acks = c.records[0].acks.borrow();
    assert_eq!(acks.len(), 3, "k+m acks expected, got {:?}", *acks);
    // Parity content must equal the RS parity of the two chunks.
    let rs = ReedSolomon::new(2, 1).expect("params");
    let expect = rs.encode(&[&chunk0, &chunk1]).expect("encode");
    assert_eq!(
        c.memories[3].borrow().read(parity_base, chunk_len as usize),
        expect[0],
        "firmware parity must equal block RS parity"
    );
}

#[test]
fn mr_protection_rejects_out_of_region_writes() {
    let setups: Vec<Option<Setup>> = vec![
        None,
        Some(Box::new(|nic: &mut NicCore| {
            nic.register_mr(0x1000, 0x1000);
        })),
    ];
    let actions: Vec<HashMap<u64, Action>> = vec![
        HashMap::from([
            (
                1u64,
                Box::new(|nic: &mut NicCore, ctx: &mut Ctx<'_>| {
                    let wrh = WriteReqHeader {
                        target_addr: 0x1000,
                        len: 100,
                        resiliency: Resiliency::None,
                    };
                    nic.send_write(ctx, 1, None, wrh, Bytes::from(vec![1u8; 100]));
                }) as Action,
            ),
            (
                2u64,
                Box::new(|nic: &mut NicCore, ctx: &mut Ctx<'_>| {
                    let wrh = WriteReqHeader {
                        target_addr: 0x9_000_000, // outside any MR
                        len: 100,
                        resiliency: Resiliency::None,
                    };
                    nic.send_write(ctx, 1, None, wrh, Bytes::from(vec![2u8; 100]));
                }) as Action,
            ),
        ]),
        HashMap::new(),
    ];
    let cfg = NicConfig {
        enforce_mr: true,
        ..Default::default()
    };
    let mut c = build(2, actions, setups, cfg);
    kick(&mut c, 0, 1, Dur::ZERO);
    kick(&mut c, 0, 2, Dur::from_us(5));
    run(&mut c, 10);
    let acks = c.records[0].acks.borrow();
    assert_eq!(acks.len(), 2);
    assert_eq!(acks[0].2.status, Status::Ok);
    assert_eq!(acks[1].2.status, Status::Rejected);
    // The rejected write must not have landed.
    assert_eq!(
        c.memories[1].borrow().read(0x9_000_000, 4),
        vec![0u8; 4],
        "rejected write leaked into memory"
    );
}
