//! INEC/TriEC-style firmware erasure-coding engine (Shi & Lu, SC'19/SC'20;
//! paper §VI-A, "INEC-TriEC").
//!
//! Per-*chunk*, store-and-forward EC offload on a conventional RDMA NIC:
//!
//! * **Data node**: a data chunk lands in host memory like a normal RDMA
//!   write. The NIC EC engine is then triggered, DMA-reads the chunk back
//!   from host memory, multiplies it by the parity coefficients, and sends
//!   m intermediate parity chunks to the parity nodes.
//! * **Parity node**: intermediate parities land in host staging buffers;
//!   once all k arrived, the engine reads them back, XORs them, and writes
//!   the final parity chunk — then acknowledges the client.
//!
//! The contrast with sPIN-TriEC (per-packet streaming, no host round trips)
//! is the entire point of Fig 15.

use std::collections::HashMap;

use bytes::Bytes;
use nadfs_gfec::ReedSolomon;
use nadfs_simnet::telemetry::phase;
use nadfs_simnet::{Bandwidth, Ctx, Dur, NodeId, Time};
use nadfs_wire::{
    AckPkt, CreditGrant, DfsHeader, EcInfo, EcRole, MsgId, ReplicaCoord, Resiliency, Status,
    WriteReqHeader,
};

use crate::nic::NicCore;

/// Firmware EC engine parameters.
#[derive(Clone, Debug)]
pub struct EcEngineConfig {
    /// Coefficient-multiply throughput of the engine (per output byte).
    pub encode_bw: Bandwidth,
    /// XOR aggregation throughput (per input byte).
    pub xor_bw: Bandwidth,
    /// Trigger/launch overhead per engine operation (WQE chain wakeup).
    pub trigger: Dur,
}

impl Default for EcEngineConfig {
    fn default() -> Self {
        EcEngineConfig {
            // TriEC/INEC-class firmware engines on ConnectX NICs encode in
            // the ~tens of Gbit/s range (Shi & Lu report single-digit GB/s
            // per NIC); triggered-WQE chains cost microseconds to fire.
            encode_bw: Bandwidth::from_gbyte_per_sec(10),
            xor_bw: Bandwidth::from_gbyte_per_sec(20),
            trigger: Dur::from_ns(5_000),
        }
    }
}

struct AggState {
    k: u8,
    chunk_len: u32,
    staged: Vec<bool>,
    staged_count: u8,
    final_addr: u64,
    greq: u64,
    client: NodeId,
    flush: Time,
}

/// Deferred engine work.
#[derive(Debug)]
pub enum EcEngineEvent {
    /// Encode the data chunk that landed at `addr` and forward intermediate
    /// parities.
    Encode {
        addr: u64,
        len: u32,
        info: EcInfo,
        dfs: Option<DfsHeader>,
        client: NodeId,
    },
    /// Aggregate the staged intermediate parities for (stripe, parity_idx).
    Aggregate { stripe: u64, parity_idx: u8 },
    /// Rebuild the missing chunks of a collected degraded gather read
    /// (survivor shards are already local — in place or staged).
    Reconstruct { gather: u64 },
}

/// The engine state on one NIC.
pub struct EcEngine {
    pub(crate) cfg: EcEngineConfig,
    rs_cache: HashMap<(u8, u8), ReedSolomon>,
    agg: HashMap<(u64, u8), AggState>,
    pub(crate) busy_until: Time,
    /// Whether this engine consumes landed EC writes (the write-path
    /// encode/aggregate offload). Engines brought up lazily for degraded
    /// gather reads leave write handling to the host software.
    consume_writes: bool,
    pub chunks_encoded: u64,
    pub parities_written: u64,
}

impl EcEngine {
    pub fn new(cfg: EcEngineConfig) -> EcEngine {
        EcEngine {
            cfg,
            rs_cache: HashMap::new(),
            agg: HashMap::new(),
            busy_until: Time::ZERO,
            consume_writes: true,
            chunks_encoded: 0,
            parities_written: 0,
        }
    }

    /// A read-only engine: reconstructs degraded gathers but does not
    /// hijack EC write handling from the node software.
    pub fn for_reads() -> EcEngine {
        let mut e = EcEngine::new(EcEngineConfig::default());
        e.consume_writes = false;
        e
    }

    fn rs(&mut self, k: u8, m: u8) -> &ReedSolomon {
        self.rs_cache
            .entry((k, m))
            .or_insert_with(|| ReedSolomon::new(k as usize, m as usize).expect("valid RS params"))
    }

    /// Does this write carry an EC role the engine should consume?
    pub fn wants(&self, wrh: &WriteReqHeader) -> bool {
        self.consume_writes && matches!(wrh.resiliency, Resiliency::ErasureCode(_))
    }
}

/// A fully-landed EC write on a firmware-EC NIC. Returns the deferred work
/// to schedule, if any, plus whether the client should get a data-chunk ack.
pub(crate) fn on_ec_write_landed(
    core: &mut NicCore,
    ctx: &mut Ctx<'_>,
    src: NodeId,
    dfs: Option<DfsHeader>,
    wrh: &WriteReqHeader,
    flush: Time,
) {
    let Resiliency::ErasureCode(info) = &wrh.resiliency else {
        return;
    };
    let info = info.clone();
    match info.role {
        EcRole::Data { .. } => {
            // Ack the client for the durable data chunk, then trigger the
            // encode pass (store-and-forward: data must be in host memory
            // first — that is the INEC model).
            let greq = dfs.map(|d| d.greq_id);
            let ack = AckPkt {
                credit: CreditGrant::ZERO,
                msg: MsgId::new(core.node() as u32, greq.unwrap_or(0)),
                greq_id: greq,
                status: Status::Ok,
            };
            let client = src;
            // Ack at flush time.
            let delay = flush.since(ctx.now());
            ctx.schedule_self(
                delay,
                Box::new(crate::nic::DeferredAck { dst: client, ack }),
            );
            let engine = core.ec.as_mut().expect("engine enabled");
            let start = flush.max(engine.busy_until) + engine.cfg.trigger;
            engine.busy_until = start;
            let ev = EcEngineEvent::Encode {
                addr: wrh.target_addr,
                len: wrh.len,
                info,
                dfs,
                client,
            };
            ctx.schedule_self(start.since(ctx.now()), Box::new(ev));
        }
        EcRole::Parity {
            parity_idx,
            src_chunk,
        } => {
            let final_coord = info
                .parity_coords
                .first()
                .copied()
                .unwrap_or(ReplicaCoord { node: 0, addr: 0 });
            let engine = core.ec.as_mut().expect("engine enabled");
            let key = (info.stripe, parity_idx);
            let st = engine.agg.entry(key).or_insert_with(|| AggState {
                k: info.scheme.k,
                chunk_len: wrh.len,
                staged: vec![false; info.scheme.k as usize],
                staged_count: 0,
                final_addr: final_coord.addr,
                greq: dfs.map(|d| d.greq_id).unwrap_or(0),
                client: dfs.map(|d| d.client as NodeId).unwrap_or(0),
                flush: Time::ZERO,
            });
            st.flush = st.flush.max(flush);
            if !st.staged[src_chunk as usize] {
                st.staged[src_chunk as usize] = true;
                st.staged_count += 1;
            }
            if st.staged_count == st.k {
                let start = st.flush.max(engine.busy_until) + engine.cfg.trigger;
                engine.busy_until = start;
                let ev = EcEngineEvent::Aggregate {
                    stripe: info.stripe,
                    parity_idx,
                };
                ctx.schedule_self(start.since(ctx.now()), Box::new(ev));
            }
        }
    }
}

impl EcEngine {
    /// Dispatch deferred engine work on `core`.
    pub fn step(core: &mut NicCore, ctx: &mut Ctx<'_>, ev: EcEngineEvent) {
        let now = ctx.now();
        match ev {
            EcEngineEvent::Encode {
                addr,
                len,
                info,
                dfs,
                client: _,
            } => {
                let EcRole::Data { chunk_idx } = info.role else {
                    return;
                };
                // DMA-read the chunk back from host memory into a pooled
                // staging buffer (store-and-forward, no fresh allocation).
                let mut chunk_buf = core.pool.borrow_mut().get_dirty(len as usize);
                let ready = core.dma.borrow_mut().read_into(now, addr, &mut chunk_buf);
                let engine = core.ec.as_mut().expect("engine enabled");
                let m = info.scheme.m;
                let k = info.scheme.k;
                // Engine compute: m coefficient-multiplied outputs.
                let compute = engine.cfg.encode_bw.tx_time(len as u64 * m as u64);
                let send_at = ready + compute;
                engine.busy_until = engine.busy_until.max(send_at);
                engine.chunks_encoded += 1;
                let coefs: Vec<u8> = (0..m)
                    .map(|p| engine.rs(k, m).parity_coef(p as usize, chunk_idx as usize))
                    .collect();
                // Build and (deferred to send_at) emit the intermediate
                // parity writes to each parity node. Each product lands in
                // a pooled buffer via the in-place wide-word kernel.
                let mut sends = Vec::new();
                for (p, coef) in coefs.into_iter().enumerate() {
                    let mut ipar = core.pool.borrow_mut().get_dirty(chunk_buf.len());
                    nadfs_gfec::intermediate_parity_into(coef, &chunk_buf, &mut ipar);
                    let coord = info.parity_coords[p];
                    // Staging layout at the parity node: final parity chunk
                    // at `coord.addr`, then k staging slots of chunk_len.
                    let staging = coord.addr + (1 + chunk_idx as u64) * len as u64;
                    let wrh = WriteReqHeader {
                        target_addr: staging,
                        len,
                        resiliency: Resiliency::ErasureCode(EcInfo {
                            scheme: info.scheme,
                            role: EcRole::Parity {
                                parity_idx: p as u8,
                                src_chunk: chunk_idx,
                            },
                            stripe: info.stripe,
                            parity_coords: vec![coord],
                        }),
                    };
                    sends.push((coord.node as NodeId, wrh, Bytes::from(ipar)));
                }
                core.pool.borrow_mut().put(chunk_buf);
                ctx.schedule_self(
                    send_at.since(now),
                    Box::new(crate::nic::DeferredWrites { sends, dfs }),
                );
            }
            EcEngineEvent::Aggregate { stripe, parity_idx } => {
                let engine = core.ec.as_mut().expect("engine enabled");
                let Some(st) = engine.agg.remove(&(stripe, parity_idx)) else {
                    return;
                };
                let xor_cost = engine.cfg.xor_bw.tx_time(st.chunk_len as u64 * st.k as u64);
                engine.parities_written += 1;
                // Read back the k staged chunks (DMA read channel) into a
                // pooled scratch buffer, XOR wide-word into a pooled
                // accumulator, write the final parity. Zero allocations in
                // steady state.
                let (mut acc, mut scratch) = {
                    let mut pool = core.pool.borrow_mut();
                    (
                        pool.get(st.chunk_len as usize),
                        pool.get_dirty(st.chunk_len as usize),
                    )
                };
                let mut ready = now;
                for j in 0..st.k {
                    let staging = st.final_addr + (1 + j as u64) * st.chunk_len as u64;
                    ready = core
                        .dma
                        .borrow_mut()
                        .read_into(ready, staging, &mut scratch);
                    nadfs_gfec::gf256::xor_slice(&scratch, &mut acc);
                }
                let write_done = core
                    .dma
                    .borrow_mut()
                    .write(ready + xor_cost, st.final_addr, &acc);
                {
                    let mut pool = core.pool.borrow_mut();
                    pool.put(scratch);
                    pool.put(acc);
                }
                // Ack the client once the final parity is durable.
                let ack = AckPkt {
                    credit: CreditGrant::ZERO,
                    msg: MsgId::new(core.node() as u32, st.greq),
                    greq_id: Some(st.greq),
                    status: Status::Ok,
                };
                ctx.schedule_self(
                    write_done.since(now),
                    Box::new(crate::nic::DeferredAck {
                        dst: st.client,
                        ack,
                    }),
                );
            }
            EcEngineEvent::Reconstruct { gather } => {
                let Some(g) = core.gathers.get(&gather) else {
                    return;
                };
                let Some(rec) = g.grh.reconstruct.as_ref() else {
                    return;
                };
                let k = rec.scheme.k as usize;
                let m = rec.scheme.m as usize;
                let clen = rec.chunk_len as usize;
                // Rebuild exactly the chunks the copy list needs that no
                // survivor segment provides.
                let mut want: Vec<usize> = rec
                    .copy
                    .iter()
                    .map(|c| c.chunk as usize)
                    .filter(|c| !g.grh.segments.iter().any(|s| s.shard as usize == *c))
                    .collect();
                want.sort_unstable();
                want.dedup();
                let greq = g.greq;
                let client = g.client;
                let msg = g.msg;
                let rec_base = g.rec_base;
                if want.is_empty() {
                    // The requested ranges all live on survivors; nothing
                    // to rebuild — stream straight from the shards.
                    ctx.schedule_self(Dur::ZERO, Box::new(crate::nic::GatherStream { id: gather }));
                    return;
                }
                // DMA-read the k survivor shards back from host memory
                // (their own chunk addresses, or staging for remote ones)
                // into pooled buffers — store-and-forward like Encode.
                let mut ready = now;
                let mut survivors: Vec<(usize, Vec<u8>)> = Vec::with_capacity(g.grh.segments.len());
                for (i, s) in g.grh.segments.iter().enumerate() {
                    let mut buf = core.pool.borrow_mut().get_dirty(clen);
                    ready = core
                        .dma
                        .borrow_mut()
                        .read_into(ready, g.seg_addr[i], &mut buf);
                    survivors.push((s.shard as usize, buf));
                }
                let shards: Vec<Option<&[u8]>> = (0..k + m)
                    .map(|i| {
                        survivors
                            .iter()
                            .find(|(s, _)| *s == i)
                            .map(|(_, b)| b.as_slice())
                    })
                    .collect();
                let mut outs: Vec<Vec<u8>> = {
                    let mut pool = core.pool.borrow_mut();
                    want.iter().map(|_| pool.get_dirty(clen)).collect()
                };
                let engine = core.ec.as_mut().expect("engine enabled");
                let ok = engine
                    .rs(rec.scheme.k, rec.scheme.m)
                    .reconstruct_into(&shards, &want, &mut outs)
                    .is_ok();
                drop(shards);
                if !ok {
                    // Malformed gather plan (wrong shard count/sizes):
                    // reject the flow rather than stream garbage.
                    let mut pool = core.pool.borrow_mut();
                    for (_, b) in survivors {
                        pool.put(b);
                    }
                    for b in outs {
                        pool.put(b);
                    }
                    drop(pool);
                    if let Some(g) = core.gathers.remove(&gather) {
                        core.release_gather_staging(g.staging, g.staging_len);
                    }
                    core.send_ack(
                        ctx,
                        client,
                        AckPkt {
                            credit: CreditGrant::ZERO,
                            msg,
                            greq_id: Some(greq),
                            status: Status::Rejected,
                        },
                    );
                    return;
                }
                // Engine compute: each rebuilt byte is a k-way
                // coefficient-multiply accumulate, same channel as encode.
                let engine = core.ec.as_mut().expect("engine enabled");
                let compute = engine.cfg.encode_bw.tx_time((clen * want.len()) as u64);
                // Land the rebuilt chunks in staging so the responder can
                // stream them alongside the survivor ranges.
                let mut done = ready + compute;
                for (w, out) in want.iter().zip(&outs) {
                    done =
                        core.dma
                            .borrow_mut()
                            .write(done, rec_base + *w as u64 * clen as u64, out);
                }
                engine.busy_until = engine.busy_until.max(done);
                core.stats.borrow_mut().chunks_reconstructed += want.len() as u64;
                {
                    let mut pool = core.pool.borrow_mut();
                    for (_, b) in survivors {
                        pool.put(b);
                    }
                    for b in outs {
                        pool.put(b);
                    }
                }
                core.obs
                    .borrow_mut()
                    .spans
                    .mark_corr_once(greq, phase::NIC_RECONSTRUCTED, done);
                core.trace
                    .borrow_mut()
                    .emit_from(done, "nic", Some(core.node()), || {
                        format!("gather-reconstruct greq={greq} chunks={}", want.len())
                    });
                ctx.schedule_self(
                    done.since(now),
                    Box::new(crate::nic::GatherStream { id: gather }),
                );
            }
        }
    }
}
