//! HyperLoop-style triggered WQE chains (Kim et al., SIGCOMM'18; paper §V,
//! "RDMA-HyperLoop").
//!
//! A client remotely writes pre-posted WQE updates into each storage NIC
//! ([`nadfs_wire::HlConfigPkt`]), arranging the replicas in a ring. As write
//! data lands in a node's host memory, the NIC — without CPU involvement —
//! DMA-reads each complete chunk back out and forwards it to the next ring
//! node. The ring tail acknowledges the client.
//!
//! Costs modeled per chunk: WQE trigger latency, host-memory DMA read
//! (slower than DMA write — the store-and-forward penalty), and egress
//! serialization. Configuration cost is on the wire: the config frame grows
//! with the WQE count (16 B per chunk).

use std::collections::HashMap;

use nadfs_simnet::{Ctx, Dur, NodeId, Time};
use nadfs_wire::{AckPkt, CreditGrant, HlConfigPkt, MsgId, Resiliency, Status, WriteReqHeader};

use crate::nic::NicCore;

/// Per-chunk WQE trigger latency (doorbell + WQE fetch on the NIC).
pub const WQE_TRIGGER: Dur = Dur::from_ns(150);

pub(crate) struct ChainState {
    cfg: HlConfigPkt,
    /// Who configured the chain (the client to ack).
    client: NodeId,
    /// Contiguously landed bytes (in-order delivery).
    landed: u32,
    /// Next chunk index to forward.
    next_fwd: u32,
    /// A forward DMA read is in flight.
    busy: bool,
    flush: Time,
}

/// All chains installed on one NIC, keyed by target address range.
#[derive(Default)]
pub struct Chains {
    by_addr: HashMap<u64, ChainState>,
    pub installed_total: u64,
    pub chunks_forwarded: u64,
}

/// Self-event for chain progress on a NIC.
#[derive(Debug, Clone, Copy)]
pub enum ChainEvent {
    /// The DMA read for `chunk` of the chain at `addr` completed; emit the
    /// forward write and continue.
    FwdReady { addr: u64, chunk: u32 },
    /// All data landed and flushed; ack the client if configured.
    Complete { addr: u64 },
}

impl Chains {
    pub fn install(&mut self, cfg: HlConfigPkt, client: NodeId) {
        self.installed_total += 1;
        self.by_addr.insert(
            cfg.local_addr,
            ChainState {
                cfg,
                client,
                landed: 0,
                next_fwd: 0,
                busy: false,
                flush: Time::ZERO,
            },
        );
    }

    /// Does an incoming write belong to an installed chain?
    pub fn matches(&self, wrh: &WriteReqHeader) -> bool {
        if !matches!(wrh.resiliency, Resiliency::None) {
            return false;
        }
        self.by_addr.iter().any(|(&base, st)| {
            wrh.target_addr >= base && wrh.target_addr < base + st.cfg.total_len.max(1) as u64
        })
    }

    fn key_for(&self, wrh: &WriteReqHeader) -> Option<u64> {
        self.by_addr
            .iter()
            .find(|(&base, st)| {
                wrh.target_addr >= base && wrh.target_addr < base + st.cfg.total_len.max(1) as u64
            })
            .map(|(&base, _)| base)
    }

    pub fn chains_open(&self) -> usize {
        self.by_addr.len()
    }
}

/// Progress notification: `bytes_landed` bytes of the chain's data are now
/// contiguously in host memory (flush horizon `flush`). Called by the NIC
/// as write packets land.
pub(crate) fn on_progress(
    core: &mut NicCore,
    ctx: &mut Ctx<'_>,
    wrh: &WriteReqHeader,
    msg_bytes_landed: u32,
    flush: Time,
) {
    let Some(key) = core.chains.key_for(wrh) else {
        return;
    };
    {
        let st = core.chains.by_addr.get_mut(&key).expect("chain");
        // Messages land in order; the write's offset within the chain plus
        // its landed bytes gives contiguous progress.
        let base = (wrh.target_addr - key) as u32;
        st.landed = st.landed.max(base + msg_bytes_landed);
        st.flush = st.flush.max(flush);
    }
    try_forward(core, ctx, key);
    try_complete(core, ctx, key);
}

fn try_forward(core: &mut NicCore, ctx: &mut Ctx<'_>, key: u64) {
    let now = ctx.now();
    let (chunk_idx, read_addr, read_len) = {
        let Some(st) = core.chains.by_addr.get_mut(&key) else {
            return;
        };
        if st.cfg.next.is_none() || st.busy {
            return;
        }
        let chunk = st.cfg.chunk.max(1);
        let total = st.cfg.total_len;
        let start = st.next_fwd * chunk;
        if start >= total {
            return; // everything forwarded
        }
        let len = chunk.min(total - start);
        // Forward only complete chunks (or the final partial one).
        if st.landed < start + len {
            return;
        }
        st.busy = true;
        (st.next_fwd, key + start as u64, len)
    };
    // WQE trigger + DMA read of the chunk from host memory.
    let trigger_done = now + WQE_TRIGGER;
    let (_, ready) = core
        .dma
        .borrow_mut()
        .read(trigger_done, read_addr, read_len as usize);
    let delay = ready.since(now);
    ctx.schedule_self(
        delay,
        Box::new(ChainEvent::FwdReady {
            addr: key,
            chunk: chunk_idx,
        }),
    );
}

fn try_complete(core: &mut NicCore, ctx: &mut Ctx<'_>, key: u64) {
    let (done, flush) = {
        let Some(st) = core.chains.by_addr.get(&key) else {
            return;
        };
        let all_landed = st.landed >= st.cfg.total_len;
        let chunk = st.cfg.chunk.max(1);
        let n_chunks = st.cfg.total_len.div_ceil(chunk).max(1);
        let all_forwarded = st.cfg.next.is_none() || st.next_fwd >= n_chunks;
        (all_landed && all_forwarded && !st.busy, st.flush)
    };
    if done {
        let delay = flush.since(ctx.now()).max(Dur::ZERO);
        ctx.schedule_self(delay, Box::new(ChainEvent::Complete { addr: key }));
    }
}

impl Chains {
    /// Dispatch a chain self-event on `core`.
    pub fn step(core: &mut NicCore, ctx: &mut Ctx<'_>, ev: ChainEvent) {
        match ev {
            ChainEvent::FwdReady { addr, chunk } => {
                let now = ctx.now();
                let (dst, wrh, data) = {
                    let Some(st) = core.chains.by_addr.get_mut(&addr) else {
                        return;
                    };
                    let next = st.cfg.next.expect("forwarding chain has next");
                    let chunk_sz = st.cfg.chunk.max(1);
                    let start = chunk * chunk_sz;
                    let len = chunk_sz.min(st.cfg.total_len - start);
                    st.next_fwd = chunk + 1;
                    st.busy = false;
                    // Forward buffer from the NIC's recycled ring: the
                    // incoming write payloads this chunk was assembled
                    // from retire into the same pool, so steady-state
                    // forwarding never touches the allocator (the last
                    // remaining alloc-per-hop on the HyperLoop path).
                    let mut buf = core.pool.borrow_mut().get_dirty(len as usize);
                    core.mem.borrow().read_into(addr + start as u64, &mut buf);
                    let wrh = WriteReqHeader {
                        target_addr: next.addr + start as u64,
                        len,
                        resiliency: Resiliency::None,
                    };
                    (next.node as NodeId, wrh, bytes::Bytes::from(buf))
                };
                core.chains.chunks_forwarded += 1;
                let _ = now;
                core.send_write(ctx, dst, None, wrh, data);
                try_forward(core, ctx, addr);
                try_complete(core, ctx, addr);
            }
            ChainEvent::Complete { addr } => {
                let Some(st) = core.chains.by_addr.remove(&addr) else {
                    return;
                };
                if st.cfg.ack_client {
                    let ack = AckPkt {
                        credit: CreditGrant::ZERO,
                        msg: MsgId::new(core.node() as u32, st.cfg.greq_id),
                        greq_id: Some(st.cfg.greq_id),
                        status: Status::Ok,
                    };
                    core.send_ack(ctx, st.client, ack);
                }
            }
        }
    }
}
