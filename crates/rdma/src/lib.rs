//! # nadfs-rdma
//!
//! Simulated RDMA NIC for the reproduction: one-sided WRITE/READ with MR
//! protection, SEND/RECV RPC transport, per-node egress/ingress flow
//! control, HyperLoop-style pre-posted triggered chains ([`chains`]), an
//! INEC-style firmware erasure-coding engine ([`ec_engine`]), and the
//! optional PsPIN accelerator attachment point.
//!
//! Each simulated node is one [`nic::Nic`] component: the hardware core
//! ([`nic::NicCore`]) plus a boxed [`app::NicApp`] implementing the node's
//! software.

pub mod app;
pub mod chains;
pub mod ec_engine;
pub mod nic;

pub use app::{NicApp, NullApp, RawWriteDone};
pub use chains::Chains;
pub use ec_engine::{EcEngine, EcEngineConfig};
pub use nic::{AppTimer, Nic, NicConfig, NicCore, NicStats, SharedNicStats};
