//! The interface between the NIC and the node software running above it.
//!
//! Each simulated node is one [`crate::nic::Nic`] component that owns the
//! hardware models (ports, DMA, optional PsPIN) and a boxed [`NicApp`] — the
//! node's software (a DFS client driver or the storage-node service from
//! `nadfs-core`). The NIC calls back into the app at hardware completion
//! points; the app models its own CPU costs via [`nadfs_host::Cpu`].

use bytes::Bytes;
use nadfs_pspin::HostNotify;
use nadfs_simnet::{Ctx, NodeId};
use nadfs_wire::{AckPkt, DfsHeader, MsgId, RpcBody, WriteReqHeader};

use crate::nic::NicCore;

/// Raw (one-sided) write fully landed and flushed on this node.
#[derive(Debug, Clone)]
pub struct RawWriteDone {
    pub msg: MsgId,
    pub src: NodeId,
    pub dfs: Option<DfsHeader>,
    pub wrh: WriteReqHeader,
    pub bytes: u32,
}

/// Node software above a NIC.
///
/// All methods have empty defaults so apps implement only what they use.
#[allow(unused_variables)]
pub trait NicApp {
    /// A complete RPC (SEND) message arrived.
    fn on_rpc(
        &mut self,
        nic: &mut NicCore,
        ctx: &mut Ctx<'_>,
        src: NodeId,
        msg: MsgId,
        body: RpcBody,
        data: Bytes,
    ) {
    }

    /// An ACK/NACK frame arrived.
    fn on_ack(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, src: NodeId, ack: AckPkt) {}

    /// A one-sided write completed locally (data flushed to host memory).
    /// Not called for writes consumed by PsPIN or by a triggered chain.
    fn on_raw_write(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, done: RawWriteDone) {}

    /// A one-sided read issued by this node completed (data in host memory).
    fn on_read_done(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, token: u64) {}

    /// A PsPIN handler emitted a host event (§III-C event queues).
    fn on_host_notify(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, note: HostNotify) {}

    /// A timer set with [`NicCore::set_timer`] fired.
    fn on_timer(&mut self, nic: &mut NicCore, ctx: &mut Ctx<'_>, tag: u64) {}
}

/// An app that ignores every callback (useful for pure-sink nodes).
pub struct NullApp;
impl NicApp for NullApp {}
