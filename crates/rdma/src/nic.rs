//! The RDMA NIC component: packetization and egress flow control, one-sided
//! WRITE/READ handling, SEND/RPC reassembly, MR protection, and routing into
//! the optional PsPIN accelerator, HyperLoop chains, and the firmware EC
//! engine.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use nadfs_host::{Cpu, CpuCosts, DmaConfig, DmaEngine, HostMemory, SharedMemory};
use nadfs_pspin::{HostNotify, PsPinConfig, PsPinDevice, PsPinEvent};
use nadfs_simnet::telemetry::phase;
use nadfs_simnet::{
    Arrive, BufPool, Component, ComponentId, CreditConfig, Ctx, Dur, FlowController, GateWake,
    NetPacket, NodeId, NodePort, ObsHub, SharedBufPool, SharedFlowStats, SharedObs, SharedTrace,
    TenantId, TenantScheduler, Time, Trace, WrClass,
};
use nadfs_wire::{
    split_payload, write_payload_caps, AckPkt, CreditGrant, DfsHeader, Frame, GatherReadHeader,
    GatherReqPkt, HlConfigPkt, MacKey, MsgId, ReadReqHeader, ReadReqPkt, ReadRespPkt, Rights,
    RpcBody, SendPkt, Status, WritePkt, WriteReqHeader,
};

use crate::app::NicApp;
use crate::chains::{self, ChainEvent, Chains};
use crate::ec_engine::{self, EcEngine, EcEngineEvent};

/// Per-NIC configuration.
#[derive(Clone, Debug, Default)]
pub struct NicConfig {
    pub dma: DmaConfig,
    pub cpu: CpuCosts,
    /// Enforce memory-region protection on one-sided ops.
    pub enforce_mr: bool,
}

// --- internal events ----------------------------------------------------

/// Self-event: a raw write message has fully flushed; emit its ack.
struct RawAck {
    msg: MsgId,
    dst: NodeId,
    greq_id: Option<u64>,
}
/// Self-event: a locally-issued read completed.
struct ReadDone {
    token: u64,
}
/// Self-event: stream the next chunk of a read response.
struct ReadStream {
    msg: MsgId,
}
/// Self-event: app timer. Also usable from outside the component (e.g.
/// test or experiment drivers) to bootstrap the app:
/// `engine.schedule(delay, nic_id, Box::new(AppTimer { tag }))`.
pub struct AppTimer {
    pub tag: u64,
}
/// Self-event: send an ack at a deferred (flush) time.
pub(crate) struct DeferredAck {
    pub dst: NodeId,
    pub ack: AckPkt,
}
/// Self-event: issue writes at a deferred (engine-ready) time.
pub(crate) struct DeferredWrites {
    pub sends: Vec<(NodeId, WriteReqHeader, Bytes)>,
    pub dfs: Option<DfsHeader>,
}
/// Self-event: enqueue frames at a deferred time (read-response pacing).
struct DeferredSend {
    dst: NodeId,
    frames: Vec<Frame>,
}
/// Self-event: start streaming a collected gather (fires at EC-engine
/// reconstruction-ready time for degraded gathers).
pub(crate) struct GatherStream {
    pub(crate) id: u64,
}
/// Self-event: stream the next batch of a gather response.
struct GatherStreamNext {
    msg: MsgId,
}

/// Token namespace for NIC-internal gather fetches ("GTRF" tag in the
/// high 32 bits): read completions in this range belong to the gather
/// state machine, not the node software.
const GATHER_FETCH_BASE: u64 = 0x4754_5246_0000_0000;
const GATHER_FETCH_TAG_MASK: u64 = 0xFFFF_FFFF_0000_0000;

// --- reassembly states --------------------------------------------------

struct RawWriteState {
    src: NodeId,
    dfs: Option<DfsHeader>,
    wrh: WriteReqHeader,
    pkts_seen: u32,
    total: u32,
    bytes: u32,
    flush: Time,
    chain_write: bool,
}

struct SendState {
    src: NodeId,
    body: RpcBody,
    data: Vec<u8>,
    pkts_seen: u32,
    total: u32,
}

/// Pending read this node issued (initiator side).
struct PendingRead {
    local_addr: u64,
    token: u64,
    pkts_seen: u32,
    flush: Time,
}

/// Read response being streamed (responder side).
struct ReadResponder {
    dst: NodeId,
    msg: MsgId,
    addr: u64,
    len: u32,
    next_off: u32,
    total_pkts: u32,
    next_idx: u32,
}

/// An offloaded gather read collecting its segments on the responder NIC.
pub(crate) struct GatherState {
    pub(crate) client: NodeId,
    pub(crate) msg: MsgId,
    pub(crate) greq: u64,
    pub(crate) grh: GatherReadHeader,
    /// Resolved local source address per segment: the segment's own host
    /// address when it lives on this node, a staging slot otherwise.
    pub(crate) seg_addr: Vec<u64>,
    /// Staging base for reconstructed chunks (degraded gathers): slot
    /// `chunk * chunk_len` holds rebuilt data chunk `chunk`.
    pub(crate) rec_base: u64,
    /// Device-arena staging region backing remote fetches and rebuilt
    /// chunks; released once the response stream (or a reject) retires
    /// the gather.
    pub(crate) staging: u64,
    pub(crate) staging_len: u64,
    remote_left: u32,
}

/// A collected gather streaming back to the client as one response flow:
/// a multi-segment generalization of [`ReadResponder`] whose packet
/// offsets are the (possibly sparse) destination offsets of the flow.
struct GatherResponder {
    dst: NodeId,
    greq: u64,
    /// `(local_addr, len, dest_off)` source ranges, streamed in order.
    segs: Vec<(u64, u32, u32)>,
    seg_idx: usize,
    seg_off: u32,
    total_pkts: u32,
    next_idx: u32,
    /// Staging region inherited from the gather, released with the flow.
    staging: u64,
    staging_len: u64,
}

/// Offload counters shared with the metrics registry (the NIC itself is
/// consumed by the engine at cluster build, so snapshot code holds this
/// handle instead).
#[derive(Clone, Copy, Debug, Default)]
pub struct NicStats {
    /// Gather read requests the NIC validated.
    pub gather_reads: u64,
    /// Gather requests rejected at capability check.
    pub gather_auth_failures: u64,
    /// NIC-to-NIC segment fetches issued by gather coordinators.
    pub gather_remote_fetches: u64,
    /// Response-flow bytes streamed by gather responders.
    pub gather_bytes_streamed: u64,
    /// Data chunks rebuilt by the on-NIC EC engine for degraded gathers.
    pub chunks_reconstructed: u64,
}

pub type SharedNicStats = Rc<RefCell<NicStats>>;

/// Message id reserved for standalone credit-return acks: pure flow-control
/// frames carrying a [`CreditGrant`] and no app-visible completion. The
/// receiving NIC applies the grant and swallows the frame before `on_ack`.
pub const CREDIT_MSG: MsgId = MsgId {
    node: u32::MAX,
    seq: u64::MAX,
};

/// A DFS read waiting for a response-stream slot.
pub struct QueuedRead {
    dst: NodeId,
    msg: MsgId,
    addr: u64,
    len: u32,
}

/// Per-tenant weighted fair queueing of DFS read streams at a storage NIC:
/// at most `max_streams` response flows run concurrently; the backlog is
/// drained in deficit-round-robin order weighted by tenant.
pub struct ReadQos {
    sched: TenantScheduler<QueuedRead>,
    /// Response streams currently running that were admitted through the
    /// scheduler (transport-level reads bypass and are not tracked).
    streams: std::collections::HashSet<MsgId>,
    pub max_streams: usize,
    /// Reentrancy guard: short streams complete inside `respond_read`,
    /// which would otherwise recurse back into the admission pump.
    pumping: bool,
}

impl ReadQos {
    pub fn new(sched: TenantScheduler<QueuedRead>, max_streams: usize) -> ReadQos {
        ReadQos {
            sched,
            streams: std::collections::HashSet::new(),
            max_streams: max_streams.max(1),
            pumping: false,
        }
    }

    /// Tenant backlog + dispatch ledgers (exported by cluster snapshots).
    pub fn scheduler(&self) -> &TenantScheduler<QueuedRead> {
        &self.sched
    }

    pub fn scheduler_mut(&mut self) -> &mut TenantScheduler<QueuedRead> {
        &mut self.sched
    }
}

/// The hardware/firmware half of a node, exposed to the app.
pub struct NicCore {
    pub cfg: NicConfig,
    port: NodePort,
    pub(crate) mem: SharedMemory,
    pub(crate) dma: Rc<RefCell<DmaEngine>>,
    pub cpu: Cpu,
    self_id: ComponentId,
    pspin: Option<PsPinDevice>,
    pub(crate) chains: Chains,
    pub(crate) ec: Option<EcEngine>,
    /// Recycled payload buffers (the NIC's packet-buffer ring): landed
    /// write payloads retire here and the EC engine / handlers draw
    /// intermediate-parity and accumulator buffers from it.
    pub(crate) pool: SharedBufPool,
    out_q: VecDeque<(NodeId, Frame, Option<WrClass>)>,
    /// Credit-based WR flow control (SF-Zhou discipline): bounded per-class
    /// send budgets per peer, recv-credit returns piggybacked on acks.
    pub flow: FlowController,
    /// WRs waiting for credit, per peer per WR class (FIFO within class).
    pending_wrs: HashMap<NodeId, [VecDeque<Vec<Frame>>; 4]>,
    /// In-flight Read-class WRs: request msg → peer. Read credits return
    /// at response completion (or cancellation), not at egress.
    credited_reads: HashMap<MsgId, NodeId>,
    /// Optional per-tenant fair queueing of DFS read streams (the
    /// storage-side QoS stage): admitted streams are bounded and the
    /// backlog drains in deficit-round-robin order.
    pub read_qos: Option<ReadQos>,
    next_seq: u64,
    raw_writes: HashMap<MsgId, RawWriteState>,
    sends: HashMap<MsgId, SendState>,
    pending_reads: HashMap<MsgId, PendingRead>,
    responders: HashMap<MsgId, ReadResponder>,
    pub(crate) gathers: HashMap<u64, GatherState>,
    gather_responders: HashMap<MsgId, GatherResponder>,
    next_gather: u64,
    mrs: Vec<(u64, u64)>,
    /// Service MAC key for NIC-side read validation: when installed,
    /// incoming read requests carrying a DFS header are authenticated on
    /// the NIC (the read-side analog of the sPIN write validation).
    service_key: Option<MacKey>,
    /// Diagnostics.
    pub writes_acked: u64,
    pub frames_sent: u64,
    /// Read requests whose capability the NIC validated / rejected.
    pub reads_validated: u64,
    pub read_auth_failures: u64,
    /// Gather/offload counters, shared with snapshot code.
    pub stats: SharedNicStats,
    /// Observability: span phase marks keyed by wire-level request id,
    /// plus the shared trace ring. Both default disabled; the cluster
    /// build installs the live hubs.
    pub obs: SharedObs,
    pub trace: SharedTrace,
}

impl NicCore {
    pub fn node(&self) -> NodeId {
        self.port.node
    }

    pub fn memory(&self) -> SharedMemory {
        self.mem.clone()
    }

    pub fn dma(&self) -> Rc<RefCell<DmaEngine>> {
        self.dma.clone()
    }

    pub fn port(&self) -> &NodePort {
        &self.port
    }

    /// Register a memory region for one-sided access.
    pub fn register_mr(&mut self, addr: u64, len: u64) {
        self.mrs.push((addr, len));
    }

    /// Install the service-shared MAC key: read requests carrying a DFS
    /// header are then capability-checked on the NIC before any byte is
    /// streamed (bad signature, expiry, or missing READ rights ⇒ NACK).
    pub fn install_service_key(&mut self, key: MacKey) {
        self.service_key = Some(key);
    }

    fn mr_ok(&self, addr: u64, len: u64) -> bool {
        if !self.cfg.enforce_mr {
            return true;
        }
        self.mrs
            .iter()
            .any(|&(a, l)| addr >= a && addr + len <= a + l)
    }

    /// Whether one-sided access to `[addr, addr + len)` is permitted
    /// (always true unless MR enforcement is on). Exposed so software
    /// read/write paths (e.g. the CPU-validated RPC read) enforce the
    /// same protection boundary as the NIC's one-sided handlers.
    pub fn mr_allows(&self, addr: u64, len: u64) -> bool {
        self.mr_ok(addr, len)
    }

    /// This NIC's recycled payload-buffer ring.
    pub fn buf_pool(&self) -> SharedBufPool {
        self.pool.clone()
    }

    /// Shared handle to this NIC's offload counters (survives the NIC
    /// being moved into the engine at cluster build).
    pub fn nic_stats(&self) -> SharedNicStats {
        self.stats.clone()
    }

    /// Shared handle to this NIC's flow-control counters (same lifetime
    /// contract as [`Self::nic_stats`]).
    pub fn flow_stats(&self) -> SharedFlowStats {
        self.flow.stats_handle()
    }

    /// Replace the credit configuration (cluster build time, before any
    /// traffic: per-peer credit state re-initialises from the new budgets).
    pub fn set_credit_config(&mut self, cfg: CreditConfig) {
        self.flow = FlowController::new(cfg);
    }

    /// Install per-tenant fair queueing of DFS read streams on this NIC
    /// (storage nodes; cluster build time).
    pub fn install_read_qos(
        &mut self,
        quantum: u64,
        default_weight: u32,
        weights: &[(TenantId, u32)],
        max_streams: usize,
    ) {
        let mut sched = TenantScheduler::new(quantum, default_weight);
        for &(t, w) in weights {
            sched.set_weight(t, w);
        }
        self.read_qos = Some(ReadQos::new(sched, max_streams));
    }

    /// Install PsPIN with an execution context on this NIC. The device
    /// shares the NIC's buffer pool, so handler DMA-write payloads recycle
    /// into the same ring the handlers allocate from.
    pub fn install_pspin(&mut self, cfg: PsPinConfig, ec: nadfs_pspin::ExecutionContext) {
        let mut dev = PsPinDevice::new(cfg, self.port.clone(), self.dma.clone(), self.self_id);
        dev.set_buf_pool(self.pool.clone());
        dev.install_context(ec);
        self.pspin = Some(dev);
    }

    pub fn pspin(&self) -> Option<&PsPinDevice> {
        self.pspin.as_ref()
    }

    pub fn pspin_mut(&mut self) -> Option<&mut PsPinDevice> {
        self.pspin.as_mut()
    }

    /// Enable the INEC-style firmware EC engine on this NIC.
    pub fn enable_firmware_ec(&mut self, engine: EcEngine) {
        self.ec = Some(engine);
    }

    pub fn firmware_ec(&self) -> Option<&EcEngine> {
        self.ec.as_ref()
    }

    pub fn hyperloop_chains(&self) -> &Chains {
        &self.chains
    }

    fn alloc_msg(&mut self) -> MsgId {
        let m = MsgId::new(self.port.node as u32, self.next_seq);
        self.next_seq += 1;
        m
    }

    /// Queue frames for transmission, bypassing WR credit accounting
    /// (egress link flow control still applies). Responder-side traffic —
    /// acks, read-response streams, gather flows — goes through here: it
    /// is modelled as hardware-generated, like AETH acks, and must never
    /// block on requester credit or the credit cycle would deadlock.
    pub fn send_frames(&mut self, ctx: &mut Ctx<'_>, dst: NodeId, frames: Vec<Frame>) {
        for f in frames {
            self.out_q.push_back((dst, f, None));
        }
        self.pump(ctx);
    }

    /// Post one work request (a message's frames) under the credit
    /// discipline: if local (and, for two-sided classes, remote) credit is
    /// available the frames enter the egress queue now; otherwise the WR
    /// parks in the per-peer pending queue and is released when credit
    /// returns. Read-class WRs additionally register in `credited_reads`
    /// so their local credit returns at response completion.
    fn post_wr(&mut self, ctx: &mut Ctx<'_>, dst: NodeId, frames: Vec<Frame>, class: WrClass) {
        if self.flow.try_acquire(dst, class) {
            self.enqueue_wr(dst, frames, class);
            self.pump(ctx);
        } else {
            self.flow.note_queued();
            self.pending_wrs.entry(dst).or_default()[class.index()].push_back(frames);
        }
    }

    /// Move an acquired WR's frames into the egress queue. Egress-completed
    /// classes (Data/Imm/Write) carry a marker on their last frame: the
    /// local credit returns when that frame leaves the NIC. Read-class
    /// completion is the response, tracked via `credited_reads`.
    fn enqueue_wr(&mut self, dst: NodeId, frames: Vec<Frame>, class: WrClass) {
        if class == WrClass::Read {
            match frames.first() {
                Some(Frame::ReadReq(r)) => {
                    self.credited_reads.insert(r.msg, dst);
                }
                Some(Frame::GatherReq(g)) => {
                    self.credited_reads.insert(g.msg, dst);
                }
                _ => {}
            }
        }
        let last = frames.len().saturating_sub(1);
        for (i, f) in frames.into_iter().enumerate() {
            let marker = if i == last && class != WrClass::Read {
                Some(class)
            } else {
                None
            };
            self.out_q.push_back((dst, f, marker));
        }
    }

    /// Release pending WRs that now have credit, appending their frames to
    /// the egress queue (the caller pumps). FIFO within each peer/class.
    fn release_pending(&mut self) {
        let peers: Vec<NodeId> = self
            .pending_wrs
            .iter()
            .filter(|(_, q)| q.iter().any(|c| !c.is_empty()))
            .map(|(&p, _)| p)
            .collect();
        for peer in peers {
            for class in WrClass::ALL {
                loop {
                    let queue = &self.pending_wrs.get(&peer).expect("listed")[class.index()];
                    if queue.is_empty() || !self.flow.can_post(peer, class) {
                        break;
                    }
                    assert!(
                        self.flow.try_acquire(peer, class),
                        "can_post implies acquire"
                    );
                    let frames = self.pending_wrs.get_mut(&peer).expect("listed")[class.index()]
                        .pop_front()
                        .expect("nonempty");
                    self.flow.note_released();
                    self.enqueue_wr(peer, frames, class);
                }
            }
        }
    }

    /// Return the local Read credit held by request `msg`. Every
    /// requester-side read — client reads, gather requests, and gather
    /// NIC-to-NIC fetches alike — registers in `credited_reads`, so the
    /// no-op branch only covers cancelled/unknown messages.
    fn return_read_credit(&mut self, ctx: &mut Ctx<'_>, msg: MsgId) {
        if let Some(peer) = self.credited_reads.remove(&msg) {
            self.flow.on_local_complete(peer, WrClass::Read);
            self.release_pending();
            self.pump(ctx);
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while let Some((dst, _, _)) = self.out_q.front() {
            let dst = *dst;
            let granted = self.port.egress_gate.borrow_mut().try_take();
            if !granted {
                let id = self.self_id;
                self.port.egress_gate.borrow_mut().register_waiter(id, 0);
                return;
            }
            let (_, frame, marker) = self.out_q.pop_front().expect("nonempty");
            self.frames_sent += 1;
            let pkt = NetPacket::new(self.port.node, dst, frame);
            ctx.schedule(
                Dur::ZERO,
                self.port.fabric,
                Box::new(nadfs_simnet::Submit { pkt }),
            );
            if let Some(class) = marker {
                // The WR's last frame left the NIC: its send-queue slot
                // frees, which may release queued WRs into the egress
                // queue (the loop keeps draining them).
                self.flow.on_local_complete(dst, class);
                self.release_pending();
            }
        }
    }

    /// Packets queued but not yet injected (diagnostic).
    pub fn egress_backlog(&self) -> usize {
        self.out_q.len()
    }

    /// WRs parked waiting for credit (diagnostic).
    pub fn pending_wr_backlog(&self) -> usize {
        self.pending_wrs
            .values()
            .map(|q| q.iter().map(|c| c.len()).sum::<usize>())
            .sum()
    }

    /// Queue frames with per-frame destinations (used by the TriEC client
    /// to interleave the packets of k chunk writes, §VI-B-1). The
    /// interleave is already shaped by the caller; it bypasses WR credit.
    pub fn send_mixed(&mut self, ctx: &mut Ctx<'_>, frames: Vec<(NodeId, Frame)>) {
        for (dst, f) in frames {
            self.out_q.push_back((dst, f, None));
        }
        self.pump(ctx);
    }

    /// Build the packets of an RDMA write message without sending them.
    pub fn build_write_frames(
        &mut self,
        dfs: Option<DfsHeader>,
        wrh: WriteReqHeader,
        data: Bytes,
    ) -> (MsgId, Vec<Frame>) {
        let msg = self.alloc_msg();
        let (mut first_cap, rest_cap) = write_payload_caps(&wrh);
        if dfs.is_none() {
            first_cap += DfsHeader::wire_size();
        }
        let parts = split_payload(data.len() as u32, first_cap, rest_cap);
        let total = parts.len() as u32;
        let frames = parts
            .into_iter()
            .enumerate()
            .map(|(i, (off, len))| {
                Frame::Write(WritePkt {
                    msg,
                    pkt_idx: i as u32,
                    total_pkts: total,
                    dfs: if i == 0 { dfs } else { None },
                    wrh: if i == 0 { Some(wrh.clone()) } else { None },
                    offset: off,
                    data: data.slice(off as usize..(off + len) as usize),
                })
            })
            .collect();
        (msg, frames)
    }

    /// One-sided RDMA write of `data` to `dst`.
    pub fn send_write(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: NodeId,
        dfs: Option<DfsHeader>,
        wrh: WriteReqHeader,
        data: Bytes,
    ) -> MsgId {
        let (msg, frames) = self.build_write_frames(dfs, wrh, data);
        self.post_wr(ctx, dst, frames, WrClass::Write);
        msg
    }

    /// Two-sided SEND carrying an RPC body plus optional inline data.
    pub fn send_rpc(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: NodeId,
        body: RpcBody,
        data: Bytes,
    ) -> MsgId {
        let msg = self.alloc_msg();
        let hdr = body.wire_size();
        let first_cap = nadfs_wire::sizes::MTU
            - nadfs_wire::sizes::RDMA_HEADER
            - nadfs_wire::sizes::RPC_HEADER
            - hdr;
        let rest_cap =
            nadfs_wire::sizes::MTU - nadfs_wire::sizes::RDMA_HEADER - nadfs_wire::sizes::RPC_HEADER;
        let parts = split_payload(data.len() as u32, first_cap, rest_cap);
        let total = parts.len() as u32;
        let frames = parts
            .into_iter()
            .enumerate()
            .map(|(i, (off, len))| {
                Frame::Send(SendPkt {
                    msg,
                    pkt_idx: i as u32,
                    total_pkts: total,
                    rpc: if i == 0 { Some(body.clone()) } else { None },
                    offset: off,
                    data: data.slice(off as usize..(off + len) as usize),
                })
            })
            .collect();
        self.post_wr(ctx, dst, frames, WrClass::Data);
        msg
    }

    /// One-sided RDMA read: fetch `rrh.len` bytes at `rrh.addr` on `dst`
    /// into local memory at `local_addr`; `on_read_done(token)` follows.
    pub fn send_read(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: NodeId,
        rrh: ReadReqHeader,
        dfs: Option<DfsHeader>,
        local_addr: u64,
        token: u64,
    ) -> MsgId {
        let msg = self.alloc_msg();
        self.expect_read_resp(msg, local_addr, token);
        let frames = vec![Frame::ReadReq(ReadReqPkt { msg, dfs, rrh })];
        // Gather coordinators fetch remote segments NIC-to-NIC on the
        // response path. These are requester-side WRs like any other
        // one-sided read and consume Read credit toward the survivor peer
        // (the response *stream* stays exempt, so credit still cycles):
        // exempting them let a gather storm monopolize a tight link
        // against flow-controlled peers. A stalled fetch parks in the
        // pending queue and releases when an earlier fetch's response
        // returns its credit — bounded in-flight, no wedge.
        self.post_wr(ctx, dst, frames, WrClass::Read);
        msg
    }

    /// Offloaded gather read: ask `dst`'s NIC to collect the ranges named
    /// by `grh` (reconstructing on-NIC when degraded) and stream them back
    /// as one response flow landing at `local_addr` plus each packet's
    /// destination offset; `on_read_done(token)` follows.
    pub fn send_gather(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: NodeId,
        dfs: DfsHeader,
        grh: GatherReadHeader,
        local_addr: u64,
        token: u64,
    ) -> MsgId {
        let msg = self.alloc_msg();
        self.expect_read_resp(msg, local_addr, token);
        self.post_wr(
            ctx,
            dst,
            vec![Frame::GatherReq(GatherReqPkt { msg, dfs, grh })],
            WrClass::Read,
        );
        msg
    }

    /// Arm reassembly for read-response packets tagged with `msg`, landing
    /// them at `local_addr` and firing `on_read_done(token)` once complete.
    /// Used by [`Self::send_read`] and by RPC-transported reads, where the
    /// request goes out as a SEND but the data comes back as ReadResp
    /// frames keyed to the request's message id.
    pub fn expect_read_resp(&mut self, msg: MsgId, local_addr: u64, token: u64) {
        self.pending_reads.insert(
            msg,
            PendingRead {
                local_addr,
                token,
                pkts_seen: 0,
                flush: Time::ZERO,
            },
        );
    }

    /// Forget an armed read (e.g. after its request was NACKed): no
    /// response packets will land and no completion will fire. Any Read
    /// credit the request held returns to the pool. (No `ctx` here — the
    /// released credit admits queued WRs at the next pump.)
    pub fn cancel_read(&mut self, msg: MsgId) {
        self.pending_reads.remove(&msg);
        if let Some(peer) = self.credited_reads.remove(&msg) {
            self.flow.on_local_complete(peer, WrClass::Read);
            self.release_pending();
        }
    }

    /// Stream `len` bytes at `addr` back to `dst` as read-response packets
    /// for request `msg` — the responder half used both by the one-sided
    /// read path and by the CPU-validated RPC read (the storage software
    /// calls this after its own capability check).
    pub fn respond_read(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: NodeId,
        msg: MsgId,
        addr: u64,
        len: u32,
    ) {
        let payload_cap = nadfs_wire::sizes::max_payload_plain();
        let total_pkts = len.div_ceil(payload_cap).max(1);
        self.responders.insert(
            msg,
            ReadResponder {
                dst,
                msg,
                addr,
                len,
                next_off: 0,
                total_pkts,
                next_idx: 0,
            },
        );
        self.stream_read(ctx, msg);
    }

    /// Send a protocol ack, piggybacking any pending recv-credit return
    /// for `dst` on it (the SF-Zhou trick: grants ride completion traffic
    /// that flows anyway, in the AETH bytes already charged by the frame).
    pub fn send_ack(&mut self, ctx: &mut Ctx<'_>, dst: NodeId, mut ack: AckPkt) {
        ack.credit = self.flow.take_grant(dst, false);
        self.send_frames(ctx, dst, vec![Frame::Ack(ack)]);
    }

    /// Flush a standalone credit ack to `peer` if returns are pending —
    /// fired when the pending return crosses the half-budget threshold and
    /// no protocol ack is imminent to carry it.
    fn send_credit_ack(&mut self, ctx: &mut Ctx<'_>, peer: NodeId) {
        let grant = self.flow.take_grant(peer, true);
        if grant.is_zero() {
            return;
        }
        self.send_frames(
            ctx,
            peer,
            vec![Frame::Ack(AckPkt {
                credit: grant,
                msg: CREDIT_MSG,
                greq_id: None,
                status: Status::Ok,
            })],
        );
    }

    /// Configure a HyperLoop forwarding chain on a remote NIC. Large
    /// configurations (many WQE updates) span several MTU-sized writes;
    /// the chain arms — and the config ack returns — on the last fragment.
    pub fn send_hl_config(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: NodeId,
        mut cfg: HlConfigPkt,
    ) -> MsgId {
        let msg = self.alloc_msg();
        cfg.msg = msg;
        cfg.total_frags = cfg.frags_needed();
        let frames = (0..cfg.total_frags)
            .map(|frag| {
                let mut f = cfg.clone();
                f.frag = frag;
                Frame::HlConfig(f)
            })
            .collect();
        self.post_wr(ctx, dst, frames, WrClass::Write);
        msg
    }

    /// Schedule an app timer.
    pub fn set_timer(&mut self, ctx: &mut Ctx<'_>, delay: Dur, tag: u64) {
        ctx.schedule(delay, self.self_id, Box::new(AppTimer { tag }));
    }

    // --- ingress handling -------------------------------------------------

    fn release_ingress(&mut self, ctx: &mut Ctx<'_>) {
        self.port.ingress_gate.borrow_mut().release(ctx);
    }

    fn on_write_pkt(&mut self, ctx: &mut Ctx<'_>, src: NodeId, w: WritePkt) {
        let now = ctx.now();
        if w.is_first() {
            let wrh = w.wrh.clone().expect("first packet carries WRH");
            if !self.mr_ok(wrh.target_addr, wrh.len as u64) {
                let nack = AckPkt {
                    credit: CreditGrant::ZERO,
                    msg: w.msg,
                    greq_id: w.dfs.map(|d| d.greq_id),
                    status: Status::Rejected,
                };
                self.send_ack(ctx, src, nack);
                return;
            }
            let chain_write = self.chains.matches(&wrh);
            self.raw_writes.insert(
                w.msg,
                RawWriteState {
                    src,
                    dfs: w.dfs,
                    wrh,
                    pkts_seen: 0,
                    total: w.total_pkts,
                    bytes: 0,
                    flush: Time::ZERO,
                    chain_write,
                },
            );
        }
        let Some(st) = self.raw_writes.get_mut(&w.msg) else {
            return; // message was rejected at its first packet
        };
        let addr = st.wrh.target_addr + w.offset as u64;
        let done = self.dma.borrow_mut().write(now, addr, &w.data);
        st.flush = st.flush.max(done);
        st.pkts_seen += 1;
        st.bytes += w.data.len() as u32;
        // Payload is durable; if this was the last live reference to the
        // message's backing buffer, recycle it into the NIC's ring.
        if let Ok(v) = w.data.try_unwrap() {
            self.pool.borrow_mut().put(v);
        }
        let complete = st.pkts_seen == st.total;
        let chain_write = st.chain_write;
        if chain_write {
            // Chains forward chunk-by-chunk as data lands (pipelining).
            let wrh = st.wrh.clone();
            let bytes = st.bytes;
            let flush = st.flush;
            if complete {
                self.raw_writes.remove(&w.msg);
            }
            chains::on_progress(self, ctx, &wrh, bytes, flush);
            return;
        }
        if complete {
            let st = self.raw_writes.remove(&w.msg).expect("just updated");
            let is_ec = self.ec.as_ref().is_some_and(|e| e.wants(&st.wrh));
            if is_ec {
                ec_engine::on_ec_write_landed(self, ctx, src, st.dfs, &st.wrh, st.flush);
                return;
            }
            // Plain raw write: ack the initiator once durable.
            ctx.schedule_at(
                st.flush,
                self.self_id,
                Box::new(RawAck {
                    msg: w.msg,
                    dst: st.src,
                    greq_id: st.dfs.map(|d| d.greq_id),
                }),
            );
        }
    }

    fn on_read_req(&mut self, ctx: &mut Ctx<'_>, src: NodeId, r: ReadReqPkt) {
        if !self.mr_ok(r.rrh.addr, r.rrh.len as u64) {
            let nack = AckPkt {
                credit: CreditGrant::ZERO,
                msg: r.msg,
                greq_id: r.dfs.map(|d| d.greq_id),
                status: Status::Rejected,
            };
            self.send_ack(ctx, src, nack);
            return;
        }
        // NIC-side read validation: DFS-level reads present a capability
        // in their DFS header; with the service key installed the NIC
        // checks it before streaming a single byte. Header-less reads
        // (e.g. the RPC+RDMA data fetch from a client) are transport-level
        // and pass through, as do nodes without the key.
        if let (Some(key), Some(dfs)) = (self.service_key.as_ref(), r.dfs.as_ref()) {
            if dfs
                .capability
                .verify(key, ctx.now().as_ns() as u64, Rights::READ)
                .is_err()
            {
                self.read_auth_failures += 1;
                let nack = AckPkt {
                    credit: CreditGrant::ZERO,
                    msg: r.msg,
                    greq_id: Some(dfs.greq_id),
                    status: Status::AuthFailed,
                };
                self.send_ack(ctx, src, nack);
                return;
            }
            self.reads_validated += 1;
            let now = ctx.now();
            self.obs
                .borrow_mut()
                .spans
                .mark_corr_once(dfs.greq_id, phase::NIC_VALIDATED, now);
            self.trace
                .borrow_mut()
                .emit_from(now, "nic", Some(self.port.node), || {
                    format!("read-validate greq={} len={}", dfs.greq_id, r.rrh.len)
                });
        }
        // DFS reads pass through the per-tenant scheduler when QoS is on;
        // transport-level reads (e.g. gather segment fetches) bypass it —
        // they are part of an already-admitted flow and queueing them
        // behind tenant backlog would invert the dependency.
        if self.read_qos.is_some() && r.dfs.is_some() {
            let tenant = r.dfs.as_ref().map_or(0, |d| d.tenant);
            let q = self.read_qos.as_mut().expect("checked");
            q.sched.push(
                tenant,
                r.rrh.len.max(1) as u64,
                QueuedRead {
                    dst: src,
                    msg: r.msg,
                    addr: r.rrh.addr,
                    len: r.rrh.len,
                },
            );
            self.pump_read_qos(ctx);
        } else {
            self.respond_read(ctx, src, r.msg, r.rrh.addr, r.rrh.len);
        }
    }

    /// Admit queued DFS reads up to the stream limit, in DRR order.
    fn pump_read_qos(&mut self, ctx: &mut Ctx<'_>) {
        match self.read_qos.as_mut() {
            Some(q) if !q.pumping => q.pumping = true,
            _ => return, // no QoS, or an outer pump is already draining
        }
        loop {
            let q = self.read_qos.as_mut().expect("guarded");
            if q.streams.len() >= q.max_streams {
                break;
            }
            let Some((_tenant, rd)) = q.sched.pop() else {
                break;
            };
            q.streams.insert(rd.msg);
            self.respond_read(ctx, rd.dst, rd.msg, rd.addr, rd.len);
        }
        self.read_qos.as_mut().expect("guarded").pumping = false;
    }

    /// A response stream finished; if it held a QoS stream slot, free it
    /// and admit the next queued read.
    fn read_qos_stream_done(&mut self, ctx: &mut Ctx<'_>, msg: MsgId) {
        let freed = self
            .read_qos
            .as_mut()
            .is_some_and(|q| q.streams.remove(&msg));
        if freed {
            self.pump_read_qos(ctx);
        }
    }

    /// Gather read arriving on a NIC without PsPIN: the firmware validates
    /// the capability once for the whole flow, then runs the gather state
    /// machine. (With PsPIN installed the request is routed through the
    /// HPU handlers instead and lands in [`NicCore::start_gather`] via the
    /// handler's host event.)
    fn on_gather_req(&mut self, ctx: &mut Ctx<'_>, src: NodeId, g: GatherReqPkt) {
        if let Some(key) = self.service_key.as_ref() {
            if g.dfs
                .capability
                .verify(key, ctx.now().as_ns() as u64, Rights::READ)
                .is_err()
            {
                self.read_auth_failures += 1;
                self.stats.borrow_mut().gather_auth_failures += 1;
                let nack = AckPkt {
                    credit: CreditGrant::ZERO,
                    msg: g.msg,
                    greq_id: Some(g.dfs.greq_id),
                    status: Status::AuthFailed,
                };
                self.send_ack(ctx, src, nack);
                return;
            }
        }
        self.reads_validated += 1;
        let now = ctx.now();
        self.obs
            .borrow_mut()
            .spans
            .mark_corr_once(g.dfs.greq_id, phase::NIC_VALIDATED, now);
        self.trace
            .borrow_mut()
            .emit_from(now, "nic", Some(self.port.node), || {
                format!(
                    "gather-validate greq={} segs={} len={}",
                    g.dfs.greq_id,
                    g.grh.segments.len(),
                    g.grh.total_len
                )
            });
        self.start_gather(ctx, src, g.msg, g.dfs.greq_id, g.grh);
    }

    /// Run a validated gather: resolve local segments, fetch remote ones
    /// NIC-to-NIC into staging, then reconstruct (if degraded) and stream.
    /// Public to the crate's callers because the PsPIN handler path enters
    /// here after HPU validation.
    pub fn start_gather(
        &mut self,
        ctx: &mut Ctx<'_>,
        client: NodeId,
        msg: MsgId,
        greq: u64,
        grh: GatherReadHeader,
    ) {
        let me = self.port.node as u32;
        // Local source ranges cross the same MR protection boundary as
        // one-sided reads.
        for s in &grh.segments {
            if s.coord.node == me && !self.mr_ok(s.coord.addr, s.len as u64) {
                let nack = AckPkt {
                    credit: CreditGrant::ZERO,
                    msg,
                    greq_id: Some(greq),
                    status: Status::Rejected,
                };
                self.send_ack(ctx, client, nack);
                return;
            }
        }
        self.stats.borrow_mut().gather_reads += 1;
        // Staging: one slot per remote segment, then one chunk_len slot
        // per data chunk for reconstruction outputs.
        let remote_bytes: u64 = grh
            .segments
            .iter()
            .filter(|s| s.coord.node != me)
            .map(|s| s.len as u64)
            .sum();
        let rec_bytes = grh
            .reconstruct
            .as_ref()
            .map_or(0, |r| r.scheme.k as u64 * r.chunk_len as u64);
        // Staging lives in the device arena: the data arena holds
        // placement-addressed chunks, and a long run's worth of gather
        // scratch bumping into them would corrupt live shards (it did —
        // the churn harness flushed exactly that: the third degraded
        // gather's reconstruction slot crossed the placement base and
        // overwrote the first page of a live chunk).
        let staging_len = remote_bytes + rec_bytes;
        let staging = if staging_len > 0 {
            self.mem.borrow_mut().alloc_device(staging_len)
        } else {
            0
        };
        let id = self.next_gather;
        self.next_gather += 1;
        let mut seg_addr = Vec::with_capacity(grh.segments.len());
        let mut cursor = staging;
        let mut fetches = Vec::new();
        for s in &grh.segments {
            if s.coord.node == me {
                seg_addr.push(s.coord.addr);
            } else {
                seg_addr.push(cursor);
                fetches.push((
                    s.coord.node as NodeId,
                    ReadReqHeader {
                        addr: s.coord.addr,
                        len: s.len,
                    },
                    cursor,
                ));
                cursor += s.len as u64;
            }
        }
        let rec_base = cursor;
        let remote_left = fetches.len() as u32;
        self.gathers.insert(
            id,
            GatherState {
                client,
                msg,
                greq,
                grh,
                seg_addr,
                rec_base,
                staging,
                staging_len,
                remote_left,
            },
        );
        if remote_left == 0 {
            self.gather_collected(ctx, id);
        } else {
            self.stats.borrow_mut().gather_remote_fetches += remote_left as u64;
            for (node, rrh, dst_addr) in fetches {
                // Transport-level NIC-to-NIC fetch (no DFS header: the
                // client capability was already validated for the flow).
                self.send_read(ctx, node, rrh, None, dst_addr, GATHER_FETCH_BASE | id);
            }
        }
    }

    /// One NIC-to-NIC segment fetch of gather `id` landed in staging.
    fn on_gather_fetch_done(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let Some(g) = self.gathers.get_mut(&id) else {
            return;
        };
        g.remote_left -= 1;
        if g.remote_left > 0 {
            return;
        }
        let greq = g.greq;
        let now = ctx.now();
        self.obs
            .borrow_mut()
            .spans
            .mark_corr_once(greq, phase::GATHERED, now);
        self.gather_collected(ctx, id);
    }

    /// All segments of gather `id` are local: reconstruct on the EC engine
    /// if degraded, else stream immediately.
    fn gather_collected(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let now = ctx.now();
        let degraded = self
            .gathers
            .get(&id)
            .is_some_and(|g| g.grh.reconstruct.is_some());
        if degraded {
            // Route survivors through the firmware EC engine; NICs that
            // never see EC writes bring one up lazily in read-only mode.
            let engine = self.ec.get_or_insert_with(EcEngine::for_reads);
            let start = now.max(engine.busy_until) + engine.cfg.trigger;
            engine.busy_until = start;
            ctx.schedule_self(
                start.since(now),
                Box::new(EcEngineEvent::Reconstruct { gather: id }),
            );
        } else {
            self.gather_stream(ctx, id);
        }
    }

    /// Turn the collected gather into a streaming response flow. For
    /// degraded gathers the EC engine calls this (via [`GatherStream`])
    /// after reconstruction landed in staging; the copy list resolves to
    /// survivor segments where possible and staged rebuilt chunks else.
    ///
    /// Return a retired gather's staging pages to the host: transient
    /// device scratch must not accumulate across a long run.
    pub(crate) fn release_gather_staging(&mut self, staging: u64, staging_len: u64) {
        if staging_len > 0 {
            self.mem.borrow_mut().release(staging, staging_len);
        }
    }

    pub(crate) fn gather_stream(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let Some(g) = self.gathers.remove(&id) else {
            return;
        };
        let payload_cap = nadfs_wire::sizes::max_payload_plain();
        let segs: Vec<(u64, u32, u32)> = match &g.grh.reconstruct {
            None => g
                .grh
                .segments
                .iter()
                .zip(&g.seg_addr)
                .filter(|(s, _)| s.len > 0)
                .map(|(s, &addr)| (addr, s.len, s.dest_off))
                .collect(),
            Some(rec) => rec
                .copy
                .iter()
                .filter(|c| c.len > 0)
                .map(|c| {
                    let base = g
                        .grh
                        .segments
                        .iter()
                        .position(|s| s.shard == c.chunk)
                        .map(|i| g.seg_addr[i])
                        .unwrap_or_else(|| g.rec_base + c.chunk as u64 * rec.chunk_len as u64);
                    (base + c.chunk_off as u64, c.len, c.dest_off)
                })
                .collect(),
        };
        let total_pkts = segs
            .iter()
            .map(|&(_, len, _)| len.div_ceil(payload_cap))
            .sum::<u32>()
            .max(1);
        self.gather_responders.insert(
            g.msg,
            GatherResponder {
                dst: g.client,
                greq: g.greq,
                segs,
                seg_idx: 0,
                seg_off: 0,
                total_pkts,
                next_idx: 0,
                staging: g.staging,
                staging_len: g.staging_len,
            },
        );
        self.stream_gather(ctx, g.msg);
    }

    /// Stream the next response batch of a gather flow: like
    /// [`NicCore::stream_read`] but walking the (possibly sparse)
    /// destination segments, with a per-batch phase mark so the op span
    /// records pipeline progress.
    fn stream_gather(&mut self, ctx: &mut Ctx<'_>, msg: MsgId) {
        const BATCH_PKTS: u32 = 32;
        let now = ctx.now();
        let Some(r) = self.gather_responders.get_mut(&msg) else {
            return;
        };
        let payload_cap = nadfs_wire::sizes::max_payload_plain();
        let dst = r.dst;
        let greq = r.greq;
        let mut frames = Vec::new();
        let mut ready = now;
        let mut batch_bytes = 0u64;
        if r.segs.is_empty() {
            frames.push(Frame::ReadResp(ReadRespPkt {
                msg,
                pkt_idx: 0,
                total_pkts: 1,
                offset: 0,
                data: Bytes::new(),
            }));
            let r = self.gather_responders.remove(&msg).expect("just looked up");
            self.release_gather_staging(r.staging, r.staging_len);
        } else {
            let mut budget = BATCH_PKTS;
            while budget > 0 && r.seg_idx < r.segs.len() {
                let (addr, len, dest_off) = r.segs[r.seg_idx];
                let left = len - r.seg_off;
                let take = left.min(payload_cap * budget);
                let (data, dma_ready) =
                    self.dma
                        .borrow_mut()
                        .read(now, addr + r.seg_off as u64, take as usize);
                ready = ready.max(dma_ready);
                let mut off = 0u32;
                while off < take {
                    let l = payload_cap.min(take - off);
                    frames.push(Frame::ReadResp(ReadRespPkt {
                        msg,
                        pkt_idx: r.next_idx,
                        total_pkts: r.total_pkts,
                        offset: dest_off + r.seg_off + off,
                        data: data.slice(off as usize..(off + l) as usize),
                    }));
                    r.next_idx += 1;
                    budget -= 1;
                    off += l;
                }
                batch_bytes += take as u64;
                r.seg_off += take;
                if r.seg_off == len {
                    r.seg_idx += 1;
                    r.seg_off = 0;
                }
            }
            let more = r.seg_idx < r.segs.len();
            if more {
                ctx.schedule_self(ready.since(now), Box::new(GatherStreamNext { msg }));
            } else {
                // The final batch's DMA reads copied the bytes out; the
                // staging pages are dead even while frames are in flight.
                let r = self.gather_responders.remove(&msg).expect("just looked up");
                self.release_gather_staging(r.staging, r.staging_len);
            }
        }
        self.stats.borrow_mut().gather_bytes_streamed += batch_bytes;
        self.obs
            .borrow_mut()
            .spans
            .mark_corr(greq, phase::STREAMED, ready);
        ctx.schedule_self(ready.since(now), Box::new(DeferredSend { dst, frames }));
    }

    /// Stream the next response batch: DMA-read up to 32 packets' worth
    /// from host memory, emit the packets at DMA-ready time, reschedule.
    /// The batch amortizes the per-op PCIe latency so streaming reads run
    /// at the DMA-read channel bandwidth.
    fn stream_read(&mut self, ctx: &mut Ctx<'_>, msg: MsgId) {
        const BATCH_PKTS: u32 = 32;
        let now = ctx.now();
        let Some(r) = self.responders.get_mut(&msg) else {
            return;
        };
        let payload_cap = nadfs_wire::sizes::max_payload_plain();
        let remaining = r.len - r.next_off.min(r.len);
        let chunk = (payload_cap * BATCH_PKTS).min(remaining);
        let mut frames = Vec::new();
        let dst = r.dst;
        let ready;
        if r.len == 0 {
            frames.push(Frame::ReadResp(ReadRespPkt {
                msg: r.msg,
                pkt_idx: 0,
                total_pkts: 1,
                offset: 0,
                data: Bytes::new(),
            }));
            ready = now;
            self.responders.remove(&msg);
        } else {
            let (data, dma_ready) =
                self.dma
                    .borrow_mut()
                    .read(now, r.addr + r.next_off as u64, chunk as usize);
            ready = dma_ready;
            let base_off = r.next_off;
            let mut off = 0u32;
            while off < chunk {
                let len = payload_cap.min(chunk - off);
                frames.push(Frame::ReadResp(ReadRespPkt {
                    msg: r.msg,
                    pkt_idx: r.next_idx,
                    total_pkts: r.total_pkts,
                    offset: base_off + off,
                    data: data.slice(off as usize..(off + len) as usize),
                }));
                r.next_idx += 1;
                off += len;
            }
            r.next_off += chunk;
            let more = r.next_off < r.len;
            if more {
                ctx.schedule_self(ready.since(now), Box::new(ReadStream { msg }));
            } else {
                self.responders.remove(&msg);
            }
        }
        ctx.schedule_self(ready.since(now), Box::new(DeferredSend { dst, frames }));
        if !self.responders.contains_key(&msg) {
            // Last batch queued: the stream's QoS slot (if any) frees and
            // the next tenant-scheduled read can start.
            self.read_qos_stream_done(ctx, msg);
        }
    }

    fn on_read_resp(&mut self, ctx: &mut Ctx<'_>, r: ReadRespPkt) {
        let now = ctx.now();
        let Some(p) = self.pending_reads.get_mut(&r.msg) else {
            return;
        };
        let addr = p.local_addr + r.offset as u64;
        let done = self.dma.borrow_mut().write(now, addr, &r.data);
        p.flush = p.flush.max(done);
        p.pkts_seen += 1;
        if p.pkts_seen == r.total_pkts {
            let p = self.pending_reads.remove(&r.msg).expect("present");
            ctx.schedule_at(p.flush, self.self_id, Box::new(ReadDone { token: p.token }));
            // The read WR completed (response fully landed): its read-queue
            // slot frees now, possibly releasing queued reads.
            self.return_read_credit(ctx, r.msg);
        }
    }
}

/// The per-node component: hardware core plus node software.
pub struct Nic {
    pub core: NicCore,
    pub app: Box<dyn NicApp>,
}

impl Nic {
    /// Create a NIC bound to `port`; `self_id` is the component id this NIC
    /// will be installed under (reserve it first).
    pub fn new(cfg: NicConfig, port: NodePort, self_id: ComponentId, app: Box<dyn NicApp>) -> Nic {
        let mem = HostMemory::new();
        let dma = Rc::new(RefCell::new(DmaEngine::new(cfg.dma.clone(), mem.clone())));
        let cpu = Cpu::new(cfg.cpu.clone());
        Nic {
            core: NicCore {
                cfg,
                port,
                mem,
                dma,
                cpu,
                self_id,
                pspin: None,
                chains: Chains::default(),
                ec: None,
                // 256 retained buffers, byte-capped by the pool's default
                // retained-capacity budget (recycled whole-block payloads
                // can be large); bounds pool memory like a real RX ring.
                pool: BufPool::shared(256),
                out_q: VecDeque::new(),
                flow: FlowController::new(CreditConfig::default()),
                pending_wrs: HashMap::new(),
                credited_reads: HashMap::new(),
                read_qos: None,
                next_seq: 0,
                raw_writes: HashMap::new(),
                sends: HashMap::new(),
                pending_reads: HashMap::new(),
                responders: HashMap::new(),
                gathers: HashMap::new(),
                gather_responders: HashMap::new(),
                next_gather: 0,
                mrs: Vec::new(),
                service_key: None,
                writes_acked: 0,
                frames_sent: 0,
                reads_validated: 0,
                read_auth_failures: 0,
                stats: Rc::new(RefCell::new(NicStats::default())),
                obs: ObsHub::disabled(),
                trace: Trace::disabled(),
            },
            app,
        }
    }
}

impl Component for Nic {
    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Box<dyn Any>) {
        let core = &mut self.core;
        let app = &mut *self.app;

        let ev = match ev.downcast::<Arrive<Frame>>() {
            Ok(a) => {
                let src = a.pkt.src;
                match a.pkt.payload {
                    Frame::Write(w) => {
                        if let Some(dev) = core.pspin.as_mut() {
                            // PsPIN matches all incoming RDMA write traffic;
                            // it owns the ingress credit until L1 copy.
                            let pkt = NetPacket::new(src, core.port.node, Frame::Write(w));
                            dev.ingest(ctx, pkt);
                            return;
                        }
                        core.on_write_pkt(ctx, src, w);
                        core.release_ingress(ctx);
                    }
                    Frame::ReadReq(r) => {
                        core.on_read_req(ctx, src, r);
                        core.release_ingress(ctx);
                    }
                    Frame::GatherReq(g) => {
                        if let Some(dev) = core.pspin.as_mut() {
                            // Gather requests are sPIN-processed where
                            // available: the HPU header handler validates
                            // the flow and hands the plan to the firmware.
                            let pkt = NetPacket::new(src, core.port.node, Frame::GatherReq(g));
                            dev.ingest(ctx, pkt);
                            return;
                        }
                        core.on_gather_req(ctx, src, g);
                        core.release_ingress(ctx);
                    }
                    Frame::ReadResp(r) => {
                        core.on_read_resp(ctx, r);
                        core.release_ingress(ctx);
                    }
                    Frame::Send(s) => {
                        let complete = {
                            if s.is_first() {
                                // Reassembly buffer from the recycled ring:
                                // capacity for the whole message up front
                                // (per-packet payload is MTU-bounded), so
                                // the extends below never reallocate and
                                // the SEND path stays off the allocator.
                                let cap = if s.total_pkts <= 1 {
                                    s.data.len()
                                } else {
                                    s.total_pkts as usize
                                        * (nadfs_wire::sizes::MTU
                                            - nadfs_wire::sizes::RDMA_HEADER
                                            - nadfs_wire::sizes::RPC_HEADER)
                                            as usize
                                };
                                let buf = core.pool.borrow_mut().get_spare(cap);
                                core.sends.insert(
                                    s.msg,
                                    SendState {
                                        src,
                                        body: s.rpc.clone().expect("first packet carries body"),
                                        data: buf,
                                        pkts_seen: 0,
                                        total: s.total_pkts,
                                    },
                                );
                            }
                            let st = core.sends.get_mut(&s.msg).expect("send state");
                            // Landing in the receive buffer costs a DMA write.
                            let now = ctx.now();
                            core.dma.borrow_mut().write(
                                now,
                                0xFEED_0000 + s.offset as u64,
                                &s.data,
                            );
                            st.data.extend_from_slice(&s.data);
                            st.pkts_seen += 1;
                            st.pkts_seen == st.total
                        };
                        core.release_ingress(ctx);
                        if complete {
                            // One SEND message absorbed = one recv WR
                            // consumed and reposted: a credit return for
                            // `src` is now pending (piggybacks on the next
                            // ack, or flushes standalone at threshold).
                            let flush = core.flow.on_recv(src, WrClass::Data);
                            let st = core.sends.remove(&s.msg).expect("send state");
                            let data = Bytes::from(st.data);
                            app.on_rpc(core, ctx, st.src, s.msg, st.body, data.clone());
                            // If the app released its reference, the
                            // backing buffer recycles into the ring.
                            if let Ok(v) = data.try_unwrap() {
                                core.pool.borrow_mut().put(v);
                            }
                            if flush {
                                // After on_rpc so a synchronous protocol
                                // ack gets first chance to carry the grant.
                                core.send_credit_ack(ctx, src);
                            }
                        }
                    }
                    Frame::Ack(ackp) => {
                        core.release_ingress(ctx);
                        // Every ack may carry a recv-credit grant; apply it
                        // before the app runs so WRs freed by it release.
                        core.flow.on_grant(src, ackp.credit);
                        core.release_pending();
                        if ackp.msg != CREDIT_MSG {
                            app.on_ack(core, ctx, src, ackp);
                        }
                        core.pump(ctx);
                    }
                    Frame::HlConfig(cfgp) => {
                        let msg = cfgp.msg;
                        let last = cfgp.is_last_frag();
                        if last {
                            core.chains.install(cfgp, src);
                        }
                        core.release_ingress(ctx);
                        if last {
                            // Config acknowledgement: the client must know
                            // the ring is armed before pushing data.
                            core.send_ack(
                                ctx,
                                src,
                                AckPkt {
                                    credit: CreditGrant::ZERO,
                                    msg,
                                    greq_id: None,
                                    status: Status::Ok,
                                },
                            );
                        }
                    }
                }
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<PsPinEvent>() {
            Ok(p) => {
                let dev = core.pspin.as_mut().expect("pspin installed");
                dev.on_event(ctx, *p);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<GateWake>() {
            Ok(_) => {
                core.pump(ctx);
                if let Some(dev) = core.pspin.as_mut() {
                    dev.on_gate_wake(ctx);
                }
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<RawAck>() {
            Ok(a) => {
                core.writes_acked += 1;
                let ack = AckPkt {
                    credit: CreditGrant::ZERO,
                    msg: a.msg,
                    greq_id: a.greq_id,
                    status: Status::Ok,
                };
                core.send_ack(ctx, a.dst, ack);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<DeferredSend>() {
            Ok(d) => {
                core.send_frames(ctx, d.dst, d.frames);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<DeferredAck>() {
            Ok(d) => {
                core.send_ack(ctx, d.dst, d.ack);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<DeferredWrites>() {
            Ok(d) => {
                for (dst, wrh, data) in d.sends {
                    core.send_write(ctx, dst, d.dfs, wrh, data);
                }
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<ReadStream>() {
            Ok(r) => {
                core.stream_read(ctx, r.msg);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<ReadDone>() {
            Ok(r) => {
                if r.token & GATHER_FETCH_TAG_MASK == GATHER_FETCH_BASE {
                    core.on_gather_fetch_done(ctx, r.token & !GATHER_FETCH_TAG_MASK);
                } else {
                    app.on_read_done(core, ctx, r.token);
                }
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<GatherStream>() {
            Ok(g) => {
                core.gather_stream(ctx, g.id);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<GatherStreamNext>() {
            Ok(g) => {
                core.stream_gather(ctx, g.msg);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<HostNotify>() {
            Ok(n) => {
                app.on_host_notify(core, ctx, *n);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<AppTimer>() {
            Ok(t) => {
                app.on_timer(core, ctx, t.tag);
                // Timer handlers may cancel reads (returning credit) —
                // drain anything the freed credit admitted.
                core.pump(ctx);
                return;
            }
            Err(e) => e,
        };
        let ev = match ev.downcast::<ChainEvent>() {
            Ok(c) => {
                Chains::step(core, ctx, *c);
                return;
            }
            Err(e) => e,
        };
        match ev.downcast::<EcEngineEvent>() {
            Ok(e) => {
                EcEngine::step(core, ctx, *e);
            }
            Err(_) => panic!("nic {}: unknown event", core.port.node),
        }
    }

    fn name(&self) -> String {
        format!("nic-{}", self.core.port.node)
    }
}
