//! Property tests for the wide-word GF(2^8) kernels and the streaming
//! aggregation path: every fast path must agree byte-for-byte with the
//! byte-at-a-time reference (`gf256::scalar`), and the pooled/reusable
//! `Accumulator` must match the block encode on ragged, out-of-order
//! packet streams.

use proptest::collection::vec;
use proptest::prelude::*;

use nadfs_gfec::{gf256, intermediate_parity_into, Accumulator, ReedSolomon};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wide_mul_acc_equals_scalar(
        c in any::<u8>(),
        src in vec(any::<u8>(), 0..600usize),
        seed in any::<u8>(),
    ) {
        let mut fast: Vec<u8> = (0..src.len()).map(|i| (i as u8) ^ seed).collect();
        let mut slow = fast.clone();
        gf256::mul_acc_slice(c, &src, &mut fast);
        gf256::scalar::mul_acc_slice(c, &src, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn wide_mul_equals_scalar(
        c in any::<u8>(),
        src in vec(any::<u8>(), 0..600usize),
    ) {
        let mut fast = vec![0xEEu8; src.len()];
        let mut slow = vec![0x11u8; src.len()];
        gf256::mul_slice(c, &src, &mut fast);
        gf256::scalar::mul_slice(c, &src, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn wide_xor_equals_byte_xor(
        src in vec(any::<u8>(), 0..600usize),
        seed in any::<u8>(),
    ) {
        let mut fast: Vec<u8> = (0..src.len()).map(|i| (i as u8).wrapping_mul(seed)).collect();
        let mut slow = fast.clone();
        gf256::xor_slice(&src, &mut fast);
        gf256::scalar::xor_slice(&src, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn fused_multi_equals_naive_per_row(
        m in 1usize..6,
        len in 1usize..5000,
        seed in any::<u8>(),
    ) {
        let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_add(seed)).collect();
        // Coefficient set exercises the 0 / 1 / table special cases.
        let coefs: Vec<u8> = (0..m).map(|p| match p {
            0 => 0,
            1 => 1,
            p => (p as u8).wrapping_mul(37).wrapping_add(seed) | 2,
        }).collect();
        let mut fused: Vec<Vec<u8>> = (0..m).map(|p| vec![p as u8; len]).collect();
        let mut naive = fused.clone();
        {
            let mut refs: Vec<&mut [u8]> = fused.iter_mut().map(|v| v.as_mut_slice()).collect();
            gf256::mul_acc_multi(&coefs, &src, &mut refs);
        }
        for (c, d) in coefs.iter().zip(naive.iter_mut()) {
            gf256::scalar::mul_acc_slice(*c, &src, d);
        }
        prop_assert_eq!(fused, naive);
    }

    #[test]
    fn fused_encode_equals_naive_encode(
        k in 1usize..7,
        m in 1usize..4,
        chunk_len in 1usize..3000,
        seed in any::<u8>(),
    ) {
        let rs = ReedSolomon::new(k, m).expect("params");
        let chunks: Vec<Vec<u8>> = (0..k)
            .map(|j| (0..chunk_len)
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(j as u8 ^ seed))
                .collect())
            .collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        // Naive: per-row scalar passes.
        let mut naive = vec![vec![0u8; chunk_len]; m];
        for (p, parity) in naive.iter_mut().enumerate() {
            for (j, chunk) in refs.iter().enumerate() {
                gf256::scalar::mul_acc_slice(rs.parity_coef(p, j), chunk, parity);
            }
        }
        let mut fused: Vec<Vec<u8>> = vec![Vec::new(); m];
        rs.encode_into(&refs, &mut fused).expect("encode_into");
        prop_assert_eq!(fused, naive);
    }

    #[test]
    fn accumulator_handles_ragged_out_of_order_streams(
        k in 2usize..6,
        chunk_len in 64usize..2000,
        mtu in 16usize..512,
        order_seed in any::<u64>(),
    ) {
        // Streaming aggregation over short-tailed packets, with the k
        // contributions of each aggregation sequence absorbed in a
        // seed-shuffled order, must equal the block encode.
        let rs = ReedSolomon::new(k, 1).expect("params");
        let chunks: Vec<Vec<u8>> = (0..k)
            .map(|j| (0..chunk_len).map(|i| ((i * 7 + j * 13) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let expect = rs.encode(&refs).expect("block encode");

        let n_pkts = chunk_len.div_ceil(mtu);
        let mut parity = Vec::with_capacity(chunk_len);
        let mut ipar = Vec::new();
        let mut state = order_seed | 1;
        for i in 0..n_pkts {
            let mut acc = Accumulator::with_buf(vec![0xAA; mtu], k as u32);
            // Pseudo-random absorption order of the k contributions.
            let mut order: Vec<usize> = (0..k).collect();
            for x in (1..k).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(x, (state >> 33) as usize % (x + 1));
            }
            for &j in &order {
                let pkt = &chunks[j][i * mtu..((i + 1) * mtu).min(chunk_len)];
                intermediate_parity_into(rs.parity_coef(0, j), pkt, &mut ipar);
                acc.absorb(&ipar);
            }
            prop_assert!(acc.is_complete());
            let len = chunks[0][i * mtu..].len().min(mtu);
            parity.extend_from_slice(acc.finish(len));
        }
        prop_assert_eq!(parity, expect[0].clone());
    }
}
