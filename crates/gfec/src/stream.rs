//! Streaming (per-packet) erasure coding — the sPIN-TriEC data path (§VI).
//!
//! A data node holding chunk `j` processes each incoming packet by
//! multiplying its payload with the parity coefficient and forwarding the
//! product ("intermediate parity") to each parity node. A parity node XORs
//! the k intermediate streams, packet index by packet index, into
//! accumulators ("aggregation sequences", Fig 14). Because the code is
//! linear, the aggregated result equals the block encode of the whole
//! chunks — asserted by the tests here and relied on by the simulator.

use crate::gf256;
use crate::rs::ReedSolomon;

/// Compute one intermediate-parity packet: `coef * payload`.
///
/// `coef` is `rs.parity_coef(p, j)` for parity `p` and data chunk `j`.
pub fn intermediate_parity(coef: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; payload.len()];
    gf256::mul_slice(coef, payload, &mut out);
    out
}

/// Per-packet-index aggregation state at a parity node: XOR of the
/// intermediate parities received so far for one aggregation sequence.
#[derive(Clone, Debug)]
pub struct Accumulator {
    buf: Vec<u8>,
    received: u32,
    expected: u32,
}

impl Accumulator {
    /// New accumulator for an aggregation sequence expecting `k`
    /// contributions of at most `cap` bytes.
    pub fn new(cap: usize, k: u32) -> Accumulator {
        Accumulator {
            buf: vec![0u8; cap],
            received: 0,
            expected: k,
        }
    }

    /// XOR one contribution in; returns true when the sequence is complete.
    /// Contributions may have different lengths (the final packets of a
    /// chunk can be short); the accumulator tracks the longest.
    pub fn absorb(&mut self, data: &[u8]) -> bool {
        assert!(
            data.len() <= self.buf.len(),
            "contribution exceeds capacity"
        );
        assert!(self.received < self.expected, "sequence over-complete");
        gf256::xor_slice(data, &mut self.buf[..data.len()]);
        self.received += 1;
        self.received == self.expected
    }

    pub fn is_complete(&self) -> bool {
        self.received == self.expected
    }

    pub fn received(&self) -> u32 {
        self.received
    }

    /// Final bytes (valid once complete); `len` trims to the real packet
    /// length.
    pub fn finish(&self, len: usize) -> &[u8] {
        debug_assert!(self.is_complete());
        &self.buf[..len]
    }
}

/// Block-encode reference path used to cross-check streaming encodes.
pub fn block_parities(rs: &ReedSolomon, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    rs.encode(&refs).expect("block encode")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Split a chunk into packets of `mtu` payload bytes.
    fn packets(chunk: &[u8], mtu: usize) -> Vec<&[u8]> {
        chunk.chunks(mtu).collect()
    }

    fn data_chunks(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|j| (0..len).map(|i| ((i * 7 + j * 13) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn streaming_equals_block_encode_rs_3_2() {
        streaming_matches_block(3, 2, 5000, 1978);
    }

    #[test]
    fn streaming_equals_block_encode_rs_6_3() {
        streaming_matches_block(6, 3, 12_345, 1978);
    }

    #[test]
    fn streaming_single_packet_chunks() {
        streaming_matches_block(2, 1, 100, 1978);
    }

    fn streaming_matches_block(k: usize, m: usize, chunk_len: usize, mtu: usize) {
        let rs = ReedSolomon::new(k, m).expect("params");
        let chunks = data_chunks(k, chunk_len);
        let expect = block_parities(&rs, &chunks);

        let n_pkts = chunk_len.div_ceil(mtu);
        for p in 0..m {
            // One accumulator per aggregation sequence (packet index).
            let mut accs: Vec<Accumulator> = (0..n_pkts)
                .map(|_| Accumulator::new(mtu, k as u32))
                .collect();
            // Interleaved arrival order (client interleaves packets, §VI-B-1):
            // packet i of every chunk, then packet i+1 ...
            for i in 0..n_pkts {
                for (j, chunk) in chunks.iter().enumerate() {
                    let pkt = packets(chunk, mtu)[i];
                    let ipar = intermediate_parity(rs.parity_coef(p, j), pkt);
                    accs[i].absorb(&ipar);
                }
            }
            // Reassemble the parity chunk from completed accumulators.
            let mut parity = Vec::with_capacity(chunk_len);
            for (i, acc) in accs.iter().enumerate() {
                assert!(acc.is_complete());
                let len = packets(&chunks[0], mtu)[i].len();
                parity.extend_from_slice(acc.finish(len));
            }
            assert_eq!(parity, expect[p], "parity {p}");
        }
    }

    #[test]
    fn arrival_order_does_not_matter() {
        // XOR is commutative: reversed chunk order gives identical parity.
        let rs = ReedSolomon::new(3, 2).expect("params");
        let chunks = data_chunks(3, 2000);
        let expect = block_parities(&rs, &chunks);
        let mtu = 512;
        let n_pkts = 2000usize.div_ceil(mtu);
        let mut accs: Vec<Accumulator> = (0..n_pkts).map(|_| Accumulator::new(mtu, 3)).collect();
        for i in (0..n_pkts).rev() {
            for j in (0..3).rev() {
                let pkt = packets(&chunks[j], mtu)[i];
                let ipar = intermediate_parity(rs.parity_coef(0, j), pkt);
                accs[i].absorb(&ipar);
            }
        }
        let mut parity = Vec::new();
        for (i, acc) in accs.iter().enumerate() {
            parity.extend_from_slice(acc.finish(packets(&chunks[0], mtu)[i].len()));
        }
        assert_eq!(parity, expect[0]);
    }

    #[test]
    fn accumulator_completion_counting() {
        let mut a = Accumulator::new(10, 3);
        assert!(!a.absorb(&[1u8; 10]));
        assert!(!a.absorb(&[2u8; 10]));
        assert!(!a.is_complete());
        assert!(a.absorb(&[3u8; 10]));
        assert!(a.is_complete());
        assert_eq!(a.finish(10), &[1 ^ 2 ^ 3u8; 10][..]);
    }

    #[test]
    #[should_panic(expected = "over-complete")]
    fn over_absorbing_panics() {
        let mut a = Accumulator::new(4, 1);
        a.absorb(&[0u8; 4]);
        a.absorb(&[0u8; 4]);
    }
}
