//! Streaming (per-packet) erasure coding — the sPIN-TriEC data path (§VI).
//!
//! A data node holding chunk `j` processes each incoming packet by
//! multiplying its payload with the parity coefficient and forwarding the
//! product ("intermediate parity") to each parity node. A parity node XORs
//! the k intermediate streams, packet index by packet index, into
//! accumulators ("aggregation sequences", Fig 14). Because the code is
//! linear, the aggregated result equals the block encode of the whole
//! chunks — asserted by the tests here and relied on by the simulator.

use crate::gf256;
use crate::rs::ReedSolomon;

/// Compute one intermediate-parity packet: `coef * payload`.
///
/// `coef` is `rs.parity_coef(p, j)` for parity `p` and data chunk `j`.
/// Allocates; the streaming hot path uses [`intermediate_parity_into`]
/// with a recycled buffer instead.
pub fn intermediate_parity(coef: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    intermediate_parity_into(coef, payload, &mut out);
    out
}

/// In-place variant of [`intermediate_parity`]: writes `coef * payload`
/// into `out`, reusing its allocation (the zero-alloc per-packet path when
/// `out` comes from a buffer pool). `mul_slice` writes every output byte
/// for every coefficient, so `out`'s prior contents never leak and no
/// zero fill is needed beyond length adjustment.
pub fn intermediate_parity_into(coef: u8, payload: &[u8], out: &mut Vec<u8>) {
    if out.len() != payload.len() {
        out.clear();
        out.resize(payload.len(), 0);
    }
    gf256::mul_slice(coef, payload, out);
}

/// Per-packet-index aggregation state at a parity node: XOR of the
/// intermediate parities received so far for one aggregation sequence.
#[derive(Clone, Debug)]
pub struct Accumulator {
    buf: Vec<u8>,
    received: u32,
    expected: u32,
}

impl Accumulator {
    /// New accumulator for an aggregation sequence expecting `k`
    /// contributions of at most `cap` bytes.
    pub fn new(cap: usize, k: u32) -> Accumulator {
        Accumulator {
            buf: vec![0u8; cap],
            received: 0,
            expected: k,
        }
    }

    /// Build an accumulator around a recycled buffer (e.g. from a
    /// `BufPool`). The buffer's length is its capacity for contributions;
    /// it is zeroed here, so dirty buffers are fine.
    pub fn with_buf(mut buf: Vec<u8>, k: u32) -> Accumulator {
        buf.fill(0);
        Accumulator {
            buf,
            received: 0,
            expected: k,
        }
    }

    /// Rearm this accumulator for a fresh sequence of `k` contributions,
    /// keeping the allocation.
    pub fn reset(&mut self, k: u32) {
        self.buf.fill(0);
        self.received = 0;
        self.expected = k;
    }

    /// Take the backing buffer (to hand it back to a pool); the
    /// accumulator is left empty and must be re-armed via [`Self::reset`]
    /// after a new buffer is installed — or just dropped.
    pub fn into_buf(self) -> Vec<u8> {
        self.buf
    }

    /// XOR one contribution in; returns true when the sequence is complete.
    /// Contributions may have different lengths (the final packets of a
    /// chunk can be short); the accumulator tracks the longest. The XOR is
    /// the u64-wide kernel.
    pub fn absorb(&mut self, data: &[u8]) -> bool {
        assert!(
            data.len() <= self.buf.len(),
            "contribution exceeds capacity"
        );
        assert!(self.received < self.expected, "sequence over-complete");
        gf256::xor_slice(data, &mut self.buf[..data.len()]);
        self.received += 1;
        self.received == self.expected
    }

    pub fn is_complete(&self) -> bool {
        self.received == self.expected
    }

    pub fn received(&self) -> u32 {
        self.received
    }

    /// Final bytes (valid once complete); `len` trims to the real packet
    /// length.
    pub fn finish(&self, len: usize) -> &[u8] {
        debug_assert!(self.is_complete());
        &self.buf[..len]
    }
}

/// Block-encode reference path used to cross-check streaming encodes.
pub fn block_parities(rs: &ReedSolomon, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    rs.encode(&refs).expect("block encode")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Split a chunk into packets of `mtu` payload bytes.
    fn packets(chunk: &[u8], mtu: usize) -> Vec<&[u8]> {
        chunk.chunks(mtu).collect()
    }

    fn data_chunks(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|j| (0..len).map(|i| ((i * 7 + j * 13) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn streaming_equals_block_encode_rs_3_2() {
        streaming_matches_block(3, 2, 5000, 1978);
    }

    #[test]
    fn streaming_equals_block_encode_rs_6_3() {
        streaming_matches_block(6, 3, 12_345, 1978);
    }

    #[test]
    fn streaming_single_packet_chunks() {
        streaming_matches_block(2, 1, 100, 1978);
    }

    fn streaming_matches_block(k: usize, m: usize, chunk_len: usize, mtu: usize) {
        let rs = ReedSolomon::new(k, m).expect("params");
        let chunks = data_chunks(k, chunk_len);
        let expect = block_parities(&rs, &chunks);

        let n_pkts = chunk_len.div_ceil(mtu);
        for (p, expected_parity) in expect.iter().enumerate().take(m) {
            // One accumulator per aggregation sequence (packet index).
            let mut accs: Vec<Accumulator> = (0..n_pkts)
                .map(|_| Accumulator::new(mtu, k as u32))
                .collect();
            // Interleaved arrival order (client interleaves packets, §VI-B-1):
            // packet i of every chunk, then packet i+1 ...
            for (i, acc) in accs.iter_mut().enumerate() {
                for (j, chunk) in chunks.iter().enumerate() {
                    let pkt = packets(chunk, mtu)[i];
                    let ipar = intermediate_parity(rs.parity_coef(p, j), pkt);
                    acc.absorb(&ipar);
                }
            }
            // Reassemble the parity chunk from completed accumulators.
            let mut parity = Vec::with_capacity(chunk_len);
            for (i, acc) in accs.iter().enumerate() {
                assert!(acc.is_complete());
                let len = packets(&chunks[0], mtu)[i].len();
                parity.extend_from_slice(acc.finish(len));
            }
            assert_eq!(&parity, expected_parity, "parity {p}");
        }
    }

    #[test]
    fn arrival_order_does_not_matter() {
        // XOR is commutative: reversed chunk order gives identical parity.
        let rs = ReedSolomon::new(3, 2).expect("params");
        let chunks = data_chunks(3, 2000);
        let expect = block_parities(&rs, &chunks);
        let mtu = 512;
        let n_pkts = 2000usize.div_ceil(mtu);
        let mut accs: Vec<Accumulator> = (0..n_pkts).map(|_| Accumulator::new(mtu, 3)).collect();
        for i in (0..n_pkts).rev() {
            for j in (0..3).rev() {
                let pkt = packets(&chunks[j], mtu)[i];
                let ipar = intermediate_parity(rs.parity_coef(0, j), pkt);
                accs[i].absorb(&ipar);
            }
        }
        let mut parity = Vec::new();
        for (i, acc) in accs.iter().enumerate() {
            parity.extend_from_slice(acc.finish(packets(&chunks[0], mtu)[i].len()));
        }
        assert_eq!(parity, expect[0]);
    }

    #[test]
    fn accumulator_completion_counting() {
        let mut a = Accumulator::new(10, 3);
        assert!(!a.absorb(&[1u8; 10]));
        assert!(!a.absorb(&[2u8; 10]));
        assert!(!a.is_complete());
        assert!(a.absorb(&[3u8; 10]));
        assert!(a.is_complete());
        assert_eq!(a.finish(10), &[1 ^ 2 ^ 3u8; 10][..]);
    }

    #[test]
    fn recycled_accumulator_matches_fresh() {
        // A dirty recycled buffer and a reset accumulator behave exactly
        // like a new one.
        let dirty = vec![0xDDu8; 10];
        let mut a = Accumulator::with_buf(dirty, 2);
        let mut b = Accumulator::new(10, 2);
        for c in [&[1u8, 2, 3][..], &[4u8, 5, 6, 7][..]] {
            a.absorb(c);
            b.absorb(c);
        }
        assert_eq!(a.finish(4), b.finish(4));
        // Reuse via reset.
        let mut buf = a.into_buf();
        buf.resize(10, 0);
        let mut a2 = Accumulator::with_buf(buf, 1);
        a2.reset(1);
        a2.absorb(&[9u8; 10]);
        assert_eq!(a2.finish(10), &[9u8; 10][..]);
    }

    #[test]
    fn intermediate_parity_into_reuses_allocation() {
        let payload: Vec<u8> = (0..1978u32).map(|i| (i * 3) as u8).collect();
        let mut out = Vec::new();
        intermediate_parity_into(0x1D, &payload, &mut out);
        assert_eq!(out, intermediate_parity(0x1D, &payload));
        let cap = out.capacity();
        let ptr = out.as_ptr();
        intermediate_parity_into(0x07, &payload, &mut out);
        assert_eq!(out, intermediate_parity(0x07, &payload));
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.as_ptr(), ptr, "no reallocation on reuse");
    }

    #[test]
    #[should_panic(expected = "over-complete")]
    fn over_absorbing_panics() {
        let mut a = Accumulator::new(4, 1);
        a.absorb(&[0u8; 4]);
        a.absorb(&[0u8; 4]);
    }
}
