//! # nadfs-gfec
//!
//! Erasure-coding substrate: GF(2^8) arithmetic with both log/exp and full
//! 256×256 product tables ([`gf256`]), dense matrices with Gauss-Jordan
//! inversion ([`matrix`]), systematic Vandermonde Reed-Solomon codes
//! ([`rs`]), and the per-packet streaming encode/aggregate path used by
//! sPIN-TriEC ([`stream`]).

pub mod cauchy;
pub mod gf256;
pub mod matrix;
pub mod rs;
pub mod stream;

pub use matrix::Matrix;
pub use rs::{ReedSolomon, RsError};
pub use stream::{block_parities, intermediate_parity, Accumulator};
