//! # nadfs-gfec
//!
//! Erasure-coding substrate: GF(2^8) arithmetic with log/exp, full 256×256
//! product, and nibble-split shuffle tables ([`gf256`] — including the
//! SSSE3/AVX2 wide-word kernels and the fused multi-parity encode), dense
//! matrices with Gauss-Jordan inversion ([`matrix`]), systematic
//! Vandermonde Reed-Solomon codes with cached encode rows and a memoized
//! decode-matrix cache ([`rs`]), and the per-packet streaming
//! encode/aggregate path used by sPIN-TriEC ([`stream`]), with in-place
//! variants for pooled, zero-alloc packet loops.

pub mod cauchy;
pub mod gf256;
pub mod matrix;
pub mod rs;
pub mod stream;

pub use matrix::Matrix;
pub use rs::{ReedSolomon, RsError};
pub use stream::{block_parities, intermediate_parity, intermediate_parity_into, Accumulator};
