//! GF(2^8) arithmetic over the AES-adjacent polynomial x^8+x^4+x^3+x^2+1
//! (0x11D), the field Reed-Solomon storage codes conventionally use.
//!
//! Two multiplication paths are provided:
//! * log/exp tables — compact, used by host-side encode/decode;
//! * a full 256×256 product table — what the paper's sPIN handlers use
//!   ("it allows us to use 256×256-byte lookup table to implement fast
//!   Galois field multiplication", §VI-B-2). The NIC cost model charges
//!   per-byte work assuming this table lives in NIC memory (64 KiB of the
//!   DFS-wide state).

use std::sync::OnceLock;

/// Reducing polynomial (without the x^8 term): x^4+x^3+x^2+1.
const POLY: u16 = 0x11D;

pub struct Tables {
    pub exp: [u8; 512],
    pub log: [u8; 256],
    /// Full product table: `mul_table[a][b] = a*b` in GF(2^8). 64 KiB.
    pub mul: Box<[[u8; 256]; 256]>,
}

fn build_tables() -> Tables {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    for i in 0..255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
    }
    for i in 255..512 {
        exp[i] = exp[i - 255];
    }
    let mut mul = Box::new([[0u8; 256]; 256]);
    for a in 1..256usize {
        for b in 1..256usize {
            mul[a][b] = exp[log[a] as usize + log[b] as usize];
        }
    }
    Tables { exp, log, mul }
}

/// Access the (lazily built, process-wide) tables.
pub fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(build_tables)
}

/// Addition = subtraction = XOR.
#[inline(always)]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiply in GF(2^8).
#[inline(always)]
pub fn mul(a: u8, b: u8) -> u8 {
    tables().mul[a as usize][b as usize]
}

/// Multiplicative inverse; panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division a/b; panics when b = 0.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] as usize + 255 - t.log[b as usize] as usize) % 255]
}

/// a^n by log-domain multiplication.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let e = (t.log[a as usize] as u64 * n as u64) % 255;
    t.exp[e as usize]
}

/// The field generator α = 2.
pub const GENERATOR: u8 = 2;

/// `dst[i] ^= c * src[i]` — the inner loop of every encode path.
pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let row = &tables().mul[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

/// `out[i] = c * src[i]`.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len());
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let row = &tables().mul[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d = row[*s as usize];
    }
}

/// `dst[i] ^= src[i]`.
pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_products() {
        // Classic GF(2^8)/0x11D facts.
        assert_eq!(mul(0, 5), 0);
        assert_eq!(mul(1, 5), 5);
        assert_eq!(mul(2, 0x80), 0x1D); // overflow wraps through POLY
        assert_eq!(mul(0xFF, 0xFF), 0xE2);
    }

    #[test]
    fn exp_log_consistency() {
        let t = tables();
        for a in 1..=255u8 {
            assert_eq!(t.exp[t.log[a as usize] as usize], a);
        }
    }

    #[test]
    fn field_axioms_exhaustive_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn distributivity_spot_checks() {
        for a in [1u8, 2, 7, 19, 133, 255] {
            for b in [0u8, 1, 3, 97, 254] {
                for c in [5u8, 88, 201] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn associativity_and_commutativity_samples() {
        for a in [3u8, 50, 200] {
            for b in [7u8, 99, 251] {
                assert_eq!(mul(a, b), mul(b, a));
                for c in [11u8, 123] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn div_is_mul_inverse() {
        for a in [0u8, 1, 9, 77, 255] {
            for b in [1u8, 2, 13, 254] {
                assert_eq!(mul(div(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [2u8, 3, 29] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = mul(x, GENERATOR);
        }
        assert_eq!(x, 1, "α^255 = 1");
    }

    #[test]
    fn slice_ops_match_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0xA5u8; 256];
        let mut expect = dst.clone();
        mul_acc_slice(0x1D, &src, &mut dst);
        for (e, s) in expect.iter_mut().zip(&src) {
            *e ^= mul(0x1D, *s);
        }
        assert_eq!(dst, expect);

        let mut out = vec![0u8; 256];
        mul_slice(7, &src, &mut out);
        let scalar: Vec<u8> = src.iter().map(|&s| mul(7, s)).collect();
        assert_eq!(out, scalar);
    }

    #[test]
    fn slice_ops_special_coefficients() {
        let src = vec![1u8, 2, 3];
        let mut dst = vec![9u8, 9, 9];
        mul_acc_slice(0, &src, &mut dst);
        assert_eq!(dst, vec![9, 9, 9]);
        mul_acc_slice(1, &src, &mut dst);
        assert_eq!(dst, vec![8, 11, 10]);
        let mut out = vec![7u8; 3];
        mul_slice(0, &src, &mut out);
        assert_eq!(out, vec![0, 0, 0]);
    }
}
