//! GF(2^8) arithmetic over the AES-adjacent polynomial x^8+x^4+x^3+x^2+1
//! (0x11D), the field Reed-Solomon storage codes conventionally use.
//!
//! Three multiplication paths are provided:
//! * log/exp tables — compact, used for scalar field ops;
//! * a full 256×256 product table — what the paper's sPIN handlers use
//!   ("it allows us to use 256×256-byte lookup table to implement fast
//!   Galois field multiplication", §VI-B-2). The NIC cost model charges
//!   per-byte work assuming this table lives in NIC memory (64 KiB of the
//!   DFS-wide state);
//! * nibble-split tables (`c*x = c*lo(x) ^ c*(hi(x)<<4)`, 2×16 entries per
//!   coefficient) driven by SSSE3/AVX2 byte shuffles — the ISA-L-style
//!   wide-word kernel the host-side encode path uses. 16 (SSSE3) or 32
//!   (AVX2) products fall out of each shuffle pair, which is what lets the
//!   simulator's encode throughput approach the paper's line-rate
//!   assumption instead of being bound by a byte-at-a-time table walk.
//!
//! # Caller contract for the slice kernels
//!
//! `mul_slice`, `mul_acc_slice` and `xor_slice` are the per-packet hot
//! loops; they check `src.len() == dst.len()` only under
//! `debug_assertions` and in release operate on the common prefix (the
//! zipped length). Callers must pass equal-length slices; use the
//! `*_checked` wrappers at API boundaries where lengths come from the
//! wire.

use std::sync::OnceLock;

/// Reducing polynomial (without the x^8 term): x^4+x^3+x^2+1.
const POLY: u16 = 0x11D;

pub struct Tables {
    pub exp: [u8; 512],
    pub log: [u8; 256],
    /// Full product table: `mul_table[a][b] = a*b` in GF(2^8). 64 KiB.
    pub mul: Box<[[u8; 256]; 256]>,
    /// Nibble-split products for the shuffle kernels: for coefficient `c`,
    /// `nib_lo[c][x] = c * x` (x < 16) and `nib_hi[c][x] = c * (x << 4)`.
    /// `c*b = nib_lo[c][b & 0xF] ^ nib_hi[c][b >> 4]`. 2 × 4 KiB.
    pub nib_lo: Box<[[u8; 16]; 256]>,
    pub nib_hi: Box<[[u8; 16]; 256]>,
}

fn build_tables() -> Tables {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    for (i, e) in exp.iter_mut().enumerate().take(255) {
        *e = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
    }
    for i in 255..512 {
        exp[i] = exp[i - 255];
    }
    let mut mul = Box::new([[0u8; 256]; 256]);
    for a in 1..256usize {
        for b in 1..256usize {
            mul[a][b] = exp[log[a] as usize + log[b] as usize];
        }
    }
    let mut nib_lo = Box::new([[0u8; 16]; 256]);
    let mut nib_hi = Box::new([[0u8; 16]; 256]);
    for c in 0..256usize {
        for x in 0..16usize {
            nib_lo[c][x] = mul[c][x];
            nib_hi[c][x] = mul[c][x << 4];
        }
    }
    Tables {
        exp,
        log,
        mul,
        nib_lo,
        nib_hi,
    }
}

/// Access the (lazily built, process-wide) tables.
pub fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(build_tables)
}

/// Addition = subtraction = XOR.
#[inline(always)]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiply in GF(2^8).
#[inline(always)]
pub fn mul(a: u8, b: u8) -> u8 {
    tables().mul[a as usize][b as usize]
}

/// Multiplicative inverse; panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division a/b; panics when b = 0.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] as usize + 255 - t.log[b as usize] as usize) % 255]
}

/// a^n by log-domain multiplication.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let e = (t.log[a as usize] as u64 * n as u64) % 255;
    t.exp[e as usize]
}

/// The field generator α = 2.
pub const GENERATOR: u8 = 2;

/// Byte-at-a-time reference kernels: the seed implementation, kept both as
/// the portable fallback and as the baseline the `ec_throughput` benchmark
/// measures the wide-word kernels against.
pub mod scalar {
    use super::tables;

    /// `dst[i] ^= c * src[i]`, one table lookup per byte.
    pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        if c == 0 {
            return;
        }
        if c == 1 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= s;
            }
            return;
        }
        let row = &tables().mul[c as usize];
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= row[*s as usize];
        }
    }

    /// `dst[i] = c * src[i]`, one table lookup per byte.
    pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        if c == 0 {
            dst.fill(0);
            return;
        }
        if c == 1 {
            let n = src.len().min(dst.len());
            dst[..n].copy_from_slice(&src[..n]);
            return;
        }
        let row = &tables().mul[c as usize];
        for (d, s) in dst.iter_mut().zip(src) {
            *d = row[*s as usize];
        }
    }

    /// `dst[i] ^= src[i]`, one byte at a time.
    pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }
}

/// x86-64 shuffle kernels (SSSE3 / AVX2): 16 or 32 GF products per
/// `pshufb` pair via the nibble-split tables.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Which instruction set the running CPU offers; detected once.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum Level {
        Scalar,
        Ssse3,
        Avx2,
    }

    pub fn level() -> Level {
        use std::sync::OnceLock;
        static L: OnceLock<Level> = OnceLock::new();
        *L.get_or_init(|| {
            if is_x86_feature_detected!("avx2") {
                Level::Avx2
            } else if is_x86_feature_detected!("ssse3") {
                Level::Ssse3
            } else {
                Level::Scalar
            }
        })
    }

    /// `dst ^= c*src` (ACC=true) or `dst = c*src` (ACC=false) over 16-byte
    /// blocks; the caller handles the tail. `lo`/`hi` are the nibble tables
    /// of coefficient `c`.
    ///
    /// # Safety
    /// Caller must ensure SSSE3 is available.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_blocks_ssse3<const ACC: bool>(
        lo: &[u8; 16],
        hi: &[u8; 16],
        src: &[u8],
        dst: &mut [u8],
    ) {
        let tlo = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
        let thi = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        for (s, d) in src.chunks_exact(16).zip(dst.chunks_exact_mut(16)) {
            let v = _mm_loadu_si128(s.as_ptr() as *const __m128i);
            let ln = _mm_and_si128(v, mask);
            let hn = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
            let mut p = _mm_xor_si128(_mm_shuffle_epi8(tlo, ln), _mm_shuffle_epi8(thi, hn));
            if ACC {
                let old = _mm_loadu_si128(d.as_ptr() as *const __m128i);
                p = _mm_xor_si128(p, old);
            }
            _mm_storeu_si128(d.as_mut_ptr() as *mut __m128i, p);
        }
    }

    /// 32-byte-block variant of [`mul_blocks_ssse3`].
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_blocks_avx2<const ACC: bool>(
        lo: &[u8; 16],
        hi: &[u8; 16],
        src: &[u8],
        dst: &mut [u8],
    ) {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr() as *const __m128i));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        for (s, d) in src.chunks_exact(32).zip(dst.chunks_exact_mut(32)) {
            let v = _mm256_loadu_si256(s.as_ptr() as *const __m256i);
            let ln = _mm256_and_si256(v, mask);
            let hn = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
            let mut p =
                _mm256_xor_si256(_mm256_shuffle_epi8(tlo, ln), _mm256_shuffle_epi8(thi, hn));
            if ACC {
                let old = _mm256_loadu_si256(d.as_ptr() as *const __m256i);
                p = _mm256_xor_si256(p, old);
            }
            _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, p);
        }
    }
}

/// Wide-word dispatch for `dst op= c*src` with `c >= 2`. Returns the number
/// of bytes handled; the caller finishes the tail with the scalar row walk.
#[inline]
fn mul_wide<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
    let n = src.len().min(dst.len());
    #[cfg(target_arch = "x86_64")]
    {
        let t = tables();
        let lo = &t.nib_lo[c as usize];
        let hi = &t.nib_hi[c as usize];
        match x86::level() {
            x86::Level::Avx2 => {
                let head = n - (n % 32);
                // SAFETY: AVX2 presence was runtime-detected.
                unsafe { x86::mul_blocks_avx2::<ACC>(lo, hi, &src[..head], &mut dst[..head]) };
                return head;
            }
            x86::Level::Ssse3 => {
                let head = n - (n % 16);
                // SAFETY: SSSE3 presence was runtime-detected.
                unsafe { x86::mul_blocks_ssse3::<ACC>(lo, hi, &src[..head], &mut dst[..head]) };
                return head;
            }
            x86::Level::Scalar => {}
        }
    }
    let _ = (c, n);
    0
}

/// `dst[i] ^= c * src[i]` — the inner loop of every encode path.
///
/// Contract: `src.len() == dst.len()` (checked only in debug builds; the
/// release kernel runs over the common prefix). See the module docs.
pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len(), "mul_acc_slice length contract");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    let done = mul_wide::<true>(c, src, dst);
    let row = &tables().mul[c as usize];
    for (d, s) in dst[done..].iter_mut().zip(&src[done..]) {
        *d ^= row[*s as usize];
    }
}

/// `out[i] = c * src[i]`.
///
/// Contract: `src.len() == dst.len()` (checked only in debug builds; the
/// release kernel runs over the common prefix). See the module docs.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len(), "mul_slice length contract");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        let n = src.len().min(dst.len());
        dst[..n].copy_from_slice(&src[..n]);
        return;
    }
    let done = mul_wide::<false>(c, src, dst);
    let row = &tables().mul[c as usize];
    for (d, s) in dst[done..].iter_mut().zip(&src[done..]) {
        *d = row[*s as usize];
    }
}

/// `dst[i] ^= src[i]` — u64-wide with a scalar tail (the `c == 1` encode
/// path and the parity-aggregation XOR).
///
/// Contract: `src.len() == dst.len()` (checked only in debug builds; the
/// release kernel runs over the common prefix). See the module docs.
pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len(), "xor_slice length contract");
    // Trim to the common prefix first: chunking the *untrimmed* slices
    // would pair mismatched chunk/remainder segments and skip interior
    // bytes when the lengths differ.
    let n = src.len().min(dst.len());
    let (src, dst) = (&src[..n], &mut dst[..n]);
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let w = u64::from_ne_bytes(dc.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(sc.try_into().expect("8-byte chunk"));
        dc.copy_from_slice(&w.to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

/// Length-checked wrapper over [`mul_acc_slice`]; panics on mismatch in
/// every build. Use at boundaries where lengths come from untrusted input.
pub fn mul_acc_slice_checked(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_acc_slice: length mismatch");
    mul_acc_slice(c, src, dst);
}

/// Length-checked wrapper over [`mul_slice`]; panics on mismatch in every
/// build.
pub fn mul_slice_checked(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice: length mismatch");
    mul_slice(c, src, dst);
}

/// Length-checked wrapper over [`xor_slice`]; panics on mismatch in every
/// build.
pub fn xor_slice_checked(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "xor_slice: length mismatch");
    xor_slice(src, dst);
}

/// Source-tile size for the fused multi-row kernel: big enough to amortize
/// the per-row call overhead, small enough that the source tile plus `m`
/// accumulator tiles stay L1/L2-resident while all rows consume them.
/// `ReedSolomon::encode_into` walks stripes at this granularity too.
pub const FUSE_TILE: usize = 16 << 10;

/// Fused multi-parity accumulate: `dsts[p][i] ^= coefs[p] * src[i]` for
/// every row `p`, walking `src` in cache-resident tiles so each source tile
/// is read from memory once and updates all `m` accumulators while hot
/// (one source read, `m` accumulator writes). This is the block-encode
/// inner loop; allocation-free.
///
/// Contract: `coefs.len() == dsts.len()` and every `dsts[p]` is at least as
/// long as `src` (debug-checked).
pub fn mul_acc_multi(coefs: &[u8], src: &[u8], dsts: &mut [&mut [u8]]) {
    debug_assert_eq!(coefs.len(), dsts.len(), "one coefficient per row");
    debug_assert!(
        dsts.iter().all(|d| d.len() >= src.len()),
        "accumulators must cover the source"
    );
    let mut off = 0;
    while off < src.len() {
        let end = (off + FUSE_TILE).min(src.len());
        let s = &src[off..end];
        for (&c, d) in coefs.iter().zip(dsts.iter_mut()) {
            mul_acc_slice(c, s, &mut d[off..end]);
        }
        off = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_products() {
        // Classic GF(2^8)/0x11D facts.
        assert_eq!(mul(0, 5), 0);
        assert_eq!(mul(1, 5), 5);
        assert_eq!(mul(2, 0x80), 0x1D); // overflow wraps through POLY
        assert_eq!(mul(0xFF, 0xFF), 0xE2);
    }

    #[test]
    fn exp_log_consistency() {
        let t = tables();
        for a in 1..=255u8 {
            assert_eq!(t.exp[t.log[a as usize] as usize], a);
        }
    }

    #[test]
    fn nibble_tables_decompose_products() {
        let t = tables();
        for c in 0..=255u8 {
            for b in 0..=255u8 {
                let split = t.nib_lo[c as usize][(b & 0xF) as usize]
                    ^ t.nib_hi[c as usize][(b >> 4) as usize];
                assert_eq!(split, mul(c, b), "c={c} b={b}");
            }
        }
    }

    #[test]
    fn field_axioms_exhaustive_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn distributivity_spot_checks() {
        for a in [1u8, 2, 7, 19, 133, 255] {
            for b in [0u8, 1, 3, 97, 254] {
                for c in [5u8, 88, 201] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn associativity_and_commutativity_samples() {
        for a in [3u8, 50, 200] {
            for b in [7u8, 99, 251] {
                assert_eq!(mul(a, b), mul(b, a));
                for c in [11u8, 123] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn div_is_mul_inverse() {
        for a in [0u8, 1, 9, 77, 255] {
            for b in [1u8, 2, 13, 254] {
                assert_eq!(mul(div(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [2u8, 3, 29] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = mul(x, GENERATOR);
        }
        assert_eq!(x, 1, "α^255 = 1");
    }

    #[test]
    fn slice_ops_match_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0xA5u8; 256];
        let mut expect = dst.clone();
        mul_acc_slice(0x1D, &src, &mut dst);
        for (e, s) in expect.iter_mut().zip(&src) {
            *e ^= mul(0x1D, *s);
        }
        assert_eq!(dst, expect);

        let mut out = vec![0u8; 256];
        mul_slice(7, &src, &mut out);
        let scalar: Vec<u8> = src.iter().map(|&s| mul(7, s)).collect();
        assert_eq!(out, scalar);
    }

    #[test]
    fn wide_kernels_match_reference_all_coefficients_ragged_lengths() {
        // Cover every coefficient and lengths around the 16/32-byte block
        // boundaries so both the vector body and the scalar tail run.
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 63, 100, 257] {
            let src: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            for c in 0..=255u8 {
                let mut fast = vec![0x5Au8; len];
                let mut slow = fast.clone();
                mul_acc_slice(c, &src, &mut fast);
                scalar::mul_acc_slice(c, &src, &mut slow);
                assert_eq!(fast, slow, "mul_acc c={c} len={len}");

                let mut fast_m = vec![9u8; len];
                let mut slow_m = vec![9u8; len];
                mul_slice(c, &src, &mut fast_m);
                scalar::mul_slice(c, &src, &mut slow_m);
                assert_eq!(fast_m, slow_m, "mul c={c} len={len}");
            }
        }
    }

    #[test]
    fn wide_xor_matches_byte_xor() {
        for len in [0usize, 1, 5, 8, 9, 16, 23, 64, 100] {
            let src: Vec<u8> = (0..len).map(|i| (i * 13 + 3) as u8).collect();
            let mut fast: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let mut slow = fast.clone();
            xor_slice(&src, &mut fast);
            scalar::xor_slice(&src, &mut slow);
            assert_eq!(fast, slow, "len={len}");
        }
    }

    #[test]
    fn fused_multi_matches_per_row() {
        let src: Vec<u8> = (0..40_000).map(|i| (i * 17 + 5) as u8).collect();
        let coefs = [0u8, 1, 2, 0x1D, 0xFF];
        let mut fused: Vec<Vec<u8>> = (0..coefs.len()).map(|p| vec![p as u8; src.len()]).collect();
        let mut naive = fused.clone();
        {
            let mut refs: Vec<&mut [u8]> = fused.iter_mut().map(|v| v.as_mut_slice()).collect();
            mul_acc_multi(&coefs, &src, &mut refs);
        }
        for (c, d) in coefs.iter().zip(naive.iter_mut()) {
            scalar::mul_acc_slice(*c, &src, d);
        }
        assert_eq!(fused, naive);
    }

    // Release builds only: the debug_assert contract check is compiled
    // out, and the documented fallback is common-prefix operation.
    #[cfg(not(debug_assertions))]
    #[test]
    fn xor_slice_release_mode_covers_the_full_common_prefix() {
        let src = vec![0xFFu8; 16];
        let mut dst = vec![0u8; 9];
        xor_slice(&src, &mut dst);
        assert_eq!(dst, vec![0xFF; 9], "every prefix byte must be XORed");
    }

    #[test]
    fn checked_wrappers_panic_on_mismatch() {
        let r = std::panic::catch_unwind(|| {
            let mut d = vec![0u8; 3];
            mul_acc_slice_checked(2, &[1, 2], &mut d);
        });
        assert!(r.is_err(), "checked wrapper must reject length mismatch");
    }

    #[test]
    fn slice_ops_special_coefficients() {
        let src = vec![1u8, 2, 3];
        let mut dst = vec![9u8, 9, 9];
        mul_acc_slice(0, &src, &mut dst);
        assert_eq!(dst, vec![9, 9, 9]);
        mul_acc_slice(1, &src, &mut dst);
        assert_eq!(dst, vec![8, 11, 10]);
        let mut out = vec![7u8; 3];
        mul_slice(0, &src, &mut out);
        assert_eq!(out, vec![0, 0, 0]);
    }
}
