//! Dense matrices over GF(2^8) with Gauss-Jordan inversion — the algebra
//! behind Reed-Solomon encode (Fig 12 of the paper: parity = encoding
//! matrix × data chunks) and erasure decode (inverting the surviving rows).

use crate::gf256;

#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        Ok(())
    }
}

impl Matrix {
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    pub fn from_rows(rows: Vec<Vec<u8>>) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        assert!(rows.iter().all(|x| x.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Vandermonde matrix `v[i][j] = α^(i·j)`: any k of its rows are linearly
    /// independent, the property RS erasure tolerance rests on.
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        assert!(rows <= 255, "at most 255 distinct evaluation points");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let x = gf256::pow(gf256::GENERATOR, i as u32);
            let mut acc = 1u8;
            for j in 0..cols {
                m[(i, j)] = acc;
                acc = gf256::mul(acc, x);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }
    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn row_mut(&mut self, r: usize) -> &mut [u8] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Select a subset of rows (e.g. the surviving shards' rows).
    pub fn select_rows(&self, which: &[usize]) -> Matrix {
        let mut out = Matrix::zero(which.len(), self.cols);
        for (i, &r) in which.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a == 0 {
                    continue;
                }
                let rrow = rhs.row(l);
                let orow = out.row_mut(i);
                gf256::mul_acc_slice(a, rrow, orow);
            }
        }
        out
    }

    /// Gauss-Jordan inverse; `None` when singular.
    pub fn invert(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find pivot.
            let pivot = (col..n).find(|&r| a[(r, col)] != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize pivot row.
            let p = a[(col, col)];
            let pinv = gf256::inv(p);
            scale_row(a.row_mut(col), pinv);
            scale_row(inv.row_mut(col), pinv);
            // Eliminate the column elsewhere.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[(r, col)];
                if f == 0 {
                    continue;
                }
                let (arow, acol) = a.two_rows(r, col);
                gf256::mul_acc_slice(f, acol, arow);
                let (irow, icol) = inv.two_rows(r, col);
                gf256::mul_acc_slice(f, icol, irow);
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Mutable row `r` together with immutable row `other` (r != other).
    fn two_rows(&mut self, r: usize, other: usize) -> (&mut [u8], &[u8]) {
        assert_ne!(r, other);
        let c = self.cols;
        if r < other {
            let (head, tail) = self.data.split_at_mut(other * c);
            (&mut head[r * c..(r + 1) * c], &tail[..c])
        } else {
            let (head, tail) = self.data.split_at_mut(r * c);
            (&mut tail[..c], &head[other * c..(other + 1) * c])
        }
    }
}

fn scale_row(row: &mut [u8], c: u8) {
    for v in row {
        *v = gf256::mul(*v, c);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = u8;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &u8 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut u8 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn vandermonde_top_square_inverts() {
        for n in 1..=8 {
            let v = Matrix::vandermonde(n, n);
            let vi = v.invert().expect("vandermonde square is invertible");
            assert_eq!(v.mul(&vi), Matrix::identity(n), "n={n}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        assert!(m.invert().is_none());
        let z = Matrix::zero(3, 3);
        assert!(z.invert().is_none());
    }

    #[test]
    fn inverse_with_row_swaps() {
        // Leading zero forces pivoting.
        let m = Matrix::from_rows(vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 1]]);
        let mi = m.invert().expect("invertible");
        assert_eq!(m.mul(&mi), Matrix::identity(3));
        assert_eq!(mi.mul(&m), Matrix::identity(3));
    }

    #[test]
    fn select_rows_picks_rows() {
        let m = Matrix::vandermonde(5, 3);
        let s = m.select_rows(&[4, 0]);
        assert_eq!(s.row(0), m.row(4));
        assert_eq!(s.row(1), m.row(0));
    }

    #[test]
    fn any_k_rows_of_tall_vandermonde_invert() {
        // The MDS property source: every k-subset of rows is invertible.
        let k = 4;
        let v = Matrix::vandermonde(8, k);
        // Exhaustive over C(8,4) = 70 subsets.
        let mut subset = [0usize; 4];
        fn rec(v: &Matrix, k: usize, start: usize, depth: usize, subset: &mut [usize; 4]) {
            if depth == k {
                let s = v.select_rows(&subset[..]);
                assert!(s.invert().is_some(), "singular subset {subset:?}");
                return;
            }
            for i in start..v.rows() {
                subset[depth] = i;
                rec(v, k, i + 1, depth + 1, subset);
            }
        }
        rec(&v, k, 0, 0, &mut subset);
    }

    #[test]
    fn mul_dimensions_and_content() {
        let a = Matrix::from_rows(vec![vec![1, 0], vec![0, 2]]);
        let b = Matrix::from_rows(vec![vec![5, 6, 7], vec![8, 9, 10]]);
        let c = a.mul(&b);
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert_eq!(c.row(0), &[5, 6, 7]);
        assert_eq!(
            c.row(1),
            &[gf256::mul(2, 8), gf256::mul(2, 9), gf256::mul(2, 10)]
        );
    }
}
