//! Cauchy-matrix Reed-Solomon construction — the standard alternative to
//! Vandermonde-derived systematic codes (used by e.g. Jerasure and several
//! DFS EC implementations the paper surveys in Table III).
//!
//! A Cauchy matrix `C[i][j] = 1/(x_i + y_j)` with all x_i, y_j distinct has
//! the property that *every* square submatrix is invertible, which gives
//! the MDS guarantee directly — no normalization pass needed for the
//! parity rows.

use crate::gf256;
use crate::matrix::Matrix;

/// Build an m×k Cauchy parity matrix with x_i = i + k, y_j = j
/// (all 2^8 > k + m elements distinct by construction).
pub fn cauchy_parity_matrix(k: usize, m: usize) -> Matrix {
    assert!(k + m <= 256, "k+m must fit the field");
    let mut out = Matrix::zero(m, k);
    for i in 0..m {
        for j in 0..k {
            let x = (i + k) as u8;
            let y = j as u8;
            out[(i, j)] = gf256::inv(gf256::add(x, y));
        }
    }
    out
}

/// Full systematic encoding matrix: identity on top, Cauchy parity below.
pub fn cauchy_encoding_matrix(k: usize, m: usize) -> Matrix {
    let parity = cauchy_parity_matrix(k, m);
    let mut rows = Vec::with_capacity(k + m);
    for i in 0..k {
        let mut r = vec![0u8; k];
        r[i] = 1;
        rows.push(r);
    }
    for i in 0..m {
        rows.push(parity.row(i).to_vec());
    }
    Matrix::from_rows(rows)
}

/// Encode parities with a Cauchy matrix (reference implementation used to
/// cross-check the Vandermonde-based [`crate::ReedSolomon`]).
pub fn cauchy_encode(k: usize, m: usize, data: &[&[u8]]) -> Vec<Vec<u8>> {
    assert_eq!(data.len(), k);
    let n = data[0].len();
    assert!(data.iter().all(|d| d.len() == n), "equal chunk sizes");
    let pm = cauchy_parity_matrix(k, m);
    let mut out = vec![vec![0u8; n]; m];
    for (i, parity) in out.iter_mut().enumerate() {
        for (j, chunk) in data.iter().enumerate() {
            gf256::mul_acc_slice(pm[(i, j)], chunk, parity);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_square_submatrix_is_invertible_small() {
        // Exhaustive over row/column subsets for k=4, m=3.
        let k = 4;
        let m = 3;
        let full = cauchy_encoding_matrix(k, m);
        // Any k rows of the full matrix must invert (MDS).
        let n = k + m;
        let mut count = 0;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let rows: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            let sub = full.select_rows(&rows);
            assert!(sub.invert().is_some(), "singular rows {rows:?}");
            count += 1;
        }
        assert_eq!(count, 35); // C(7,4)
    }

    #[test]
    fn cauchy_recovers_erasures_via_matrix_algebra() {
        let (k, m) = (3usize, 2usize);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|j| (0..257).map(|i| ((i * 31 + j * 7) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = cauchy_encode(k, m, &refs);
        let full = cauchy_encoding_matrix(k, m);

        // Erase data chunks 0 and 2; decode from chunk 1 + both parities.
        let surviving_rows = [1usize, 3, 4];
        let sub = full.select_rows(&surviving_rows);
        let dec = sub.invert().expect("invertible");
        let survivors: [&[u8]; 3] = [&data[1], &parities[0], &parities[1]];
        for out_idx in [0usize, 2] {
            let mut rec = vec![0u8; data[0].len()];
            for (c, s) in survivors.iter().enumerate() {
                gf256::mul_acc_slice(dec[(out_idx, c)], s, &mut rec);
            }
            assert_eq!(rec, data[out_idx], "chunk {out_idx}");
        }
    }

    #[test]
    fn parity_matrix_has_no_zero_entries() {
        let pm = cauchy_parity_matrix(8, 4);
        for i in 0..4 {
            assert!(pm.row(i).iter().all(|&c| c != 0));
        }
    }

    #[test]
    #[should_panic(expected = "must fit the field")]
    fn oversized_field_rejected() {
        cauchy_parity_matrix(200, 100);
    }
}
