//! Systematic Reed-Solomon codes RS(k, m): k data chunks, m parity chunks,
//! any m erasures recoverable (maximum distance separable, §VI of the
//! paper).
//!
//! The encoding matrix is Vandermonde-derived and systematic: a (k+m)×k
//! Vandermonde matrix is normalized by the inverse of its top k×k square so
//! the first k rows become the identity (data chunks are stored verbatim,
//! "k of k+m encoded chunks are identical to the original k data chunks").

use std::collections::HashMap;
use std::sync::Mutex;

use crate::gf256;
use crate::matrix::Matrix;

/// How many decode (inversion) matrices a code instance memoizes. Repairs
/// in a real cluster hit a handful of erasure patterns over and over (the
/// same dead node's chunks), so a small LRU absorbs nearly all inversions.
const DECODE_CACHE_CAP: usize = 16;

/// LRU-ish memo of survivor-row-set → inverted decode matrix.
#[derive(Debug, Default)]
struct DecodeCache {
    map: HashMap<Vec<usize>, (u64, Matrix)>,
    tick: u64,
    pub hits: u64,
    pub misses: u64,
}

impl DecodeCache {
    fn get_or_insert_with<F: FnOnce() -> Matrix>(&mut self, key: &[usize], f: F) -> Matrix {
        self.tick += 1;
        let tick = self.tick;
        if let Some((stamp, m)) = self.map.get_mut(key) {
            *stamp = tick;
            self.hits += 1;
            return m.clone();
        }
        self.misses += 1;
        let m = f();
        if self.map.len() >= DECODE_CACHE_CAP {
            // Evict the least-recently-used pattern.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key.to_vec(), (tick, m.clone()));
        m
    }
}

/// A Reed-Solomon code instance.
#[derive(Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// Full systematic encoding matrix, (k+m)×k.
    enc: Matrix,
    /// The m parity rows of `enc`, flattened row-major (`rows[p*k + j]`):
    /// coefficients resolved once per code so the per-packet streaming path
    /// never walks the matrix.
    parity_rows: Box<[u8]>,
    /// Memoized decode matrices keyed by the survivor-row set, so repeated
    /// repairs with the same missing pattern skip Gauss-Jordan inversion.
    decode_cache: Mutex<DecodeCache>,
}

impl Clone for ReedSolomon {
    fn clone(&self) -> ReedSolomon {
        ReedSolomon {
            k: self.k,
            m: self.m,
            enc: self.enc.clone(),
            parity_rows: self.parity_rows.clone(),
            // Caches are per-instance scratch; a clone starts cold.
            decode_cache: Mutex::new(DecodeCache::default()),
        }
    }
}

/// Errors from encode/reconstruct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    WrongChunkCount { expected: usize, got: usize },
    ChunkSizeMismatch,
    TooFewShards { present: usize, need: usize },
    InvalidParams,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::WrongChunkCount { expected, got } => {
                write!(f, "expected {expected} chunks, got {got}")
            }
            RsError::ChunkSizeMismatch => write!(f, "all chunks must have equal length"),
            RsError::TooFewShards { present, need } => {
                write!(f, "only {present} shards present, need {need}")
            }
            RsError::InvalidParams => write!(f, "invalid RS parameters"),
        }
    }
}

impl std::error::Error for RsError {}

impl ReedSolomon {
    /// Create an RS(k, m) code. Requires 1 ≤ k, 1 ≤ m, k+m ≤ 255.
    pub fn new(k: usize, m: usize) -> Result<ReedSolomon, RsError> {
        if k == 0 || m == 0 || k + m > 255 {
            return Err(RsError::InvalidParams);
        }
        let v = Matrix::vandermonde(k + m, k);
        let top_inv = v
            .select_rows(&(0..k).collect::<Vec<_>>())
            .invert()
            .expect("vandermonde top square is invertible");
        let enc = v.mul(&top_inv);
        debug_assert_eq!(
            enc.select_rows(&(0..k).collect::<Vec<_>>()),
            Matrix::identity(k),
            "systematic code: top must be identity"
        );
        let mut parity_rows = vec![0u8; m * k];
        for p in 0..m {
            parity_rows[p * k..(p + 1) * k].copy_from_slice(enc.row(k + p));
        }
        Ok(ReedSolomon {
            k,
            m,
            enc,
            parity_rows: parity_rows.into_boxed_slice(),
            decode_cache: Mutex::new(DecodeCache::default()),
        })
    }

    pub fn k(&self) -> usize {
        self.k
    }
    pub fn m(&self) -> usize {
        self.m
    }

    /// Coefficient multiplying data chunk `j` in parity `p`
    /// (the per-packet streaming path uses these directly; resolved from
    /// the flat cached rows, not the matrix).
    #[inline]
    pub fn parity_coef(&self, p: usize, j: usize) -> u8 {
        self.parity_rows[p * self.k + j]
    }

    /// Row of coefficients for parity `p`.
    pub fn parity_row(&self, p: usize) -> &[u8] {
        &self.parity_rows[p * self.k..(p + 1) * self.k]
    }

    /// Encode: compute the m parity chunks for `data` (k equal-size chunks).
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, RsError> {
        let mut parities = vec![Vec::new(); self.m];
        self.encode_into(data, &mut parities)?;
        Ok(parities)
    }

    /// Encode into caller-owned parity buffers (resized and overwritten),
    /// reusing their allocations: no per-byte or parity-sized allocation,
    /// only tiny per-call coefficient/slice scratch.
    ///
    /// The inner loop is [`gf256::mul_acc_multi`], the fused multi-row
    /// kernel: the stripe is walked in cache-resident tiles, and within a
    /// tile every source chunk is read once while all `m` parity
    /// accumulators are updated hot.
    pub fn encode_into(&self, data: &[&[u8]], parities: &mut [Vec<u8>]) -> Result<(), RsError> {
        if data.len() != self.k {
            return Err(RsError::WrongChunkCount {
                expected: self.k,
                got: data.len(),
            });
        }
        if parities.len() != self.m {
            return Err(RsError::WrongChunkCount {
                expected: self.m,
                got: parities.len(),
            });
        }
        let n = data[0].len();
        if data.iter().any(|c| c.len() != n) {
            return Err(RsError::ChunkSizeMismatch);
        }
        for p in parities.iter_mut() {
            p.clear();
            p.resize(n, 0);
        }
        // Column-major coefficient view: cols[j*m + p] multiplies chunk j
        // into parity p (what the per-source fused kernel consumes).
        let mut cols = vec![0u8; self.k * self.m];
        for j in 0..self.k {
            for p in 0..self.m {
                cols[j * self.m + p] = self.parity_rows[p * self.k + j];
            }
        }
        let mut off = 0;
        while off < n {
            let end = (off + gf256::FUSE_TILE).min(n);
            let mut dsts: Vec<&mut [u8]> = parities.iter_mut().map(|p| &mut p[off..end]).collect();
            for (j, chunk) in data.iter().enumerate() {
                gf256::mul_acc_multi(
                    &cols[j * self.m..(j + 1) * self.m],
                    &chunk[off..end],
                    &mut dsts,
                );
            }
            off = end;
        }
        Ok(())
    }

    /// Decode-cache counters: `(hits, misses)` of the per-pattern
    /// inversion memo (diagnostics for repair-heavy workloads).
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        let c = self.decode_cache.lock().expect("decode cache poisoned");
        (c.hits, c.misses)
    }

    /// Verify that `shards` (k data followed by m parity) are consistent.
    pub fn verify(&self, shards: &[&[u8]]) -> Result<bool, RsError> {
        if shards.len() != self.k + self.m {
            return Err(RsError::WrongChunkCount {
                expected: self.k + self.m,
                got: shards.len(),
            });
        }
        let parities = self.encode(&shards[..self.k])?;
        Ok(parities
            .iter()
            .zip(&shards[self.k..])
            .all(|(computed, stored)| computed.as_slice() == *stored))
    }

    /// Reconstruct all missing shards in place. `shards` has k+m entries
    /// (data then parity); `None` marks an erasure. Needs ≥ k survivors.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.k + self.m {
            return Err(RsError::WrongChunkCount {
                expected: self.k + self.m,
                got: shards.len(),
            });
        }
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            // Nothing to rebuild, but keep validating: a complete-but-
            // inconsistent shard set is still an error, not a success.
            let n = shards[0].as_ref().expect("present").len();
            if shards
                .iter()
                .any(|s| s.as_ref().expect("present").len() != n)
            {
                return Err(RsError::ChunkSizeMismatch);
            }
            return Ok(());
        }
        let refs: Vec<Option<&[u8]>> = shards
            .iter()
            .map(|s| s.as_ref().map(|v| v.as_slice()))
            .collect();
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); missing.len()];
        self.reconstruct_into(&refs, &missing, &mut out)?;
        for (&i, buf) in missing.iter().zip(out) {
            shards[i] = Some(buf);
        }
        Ok(())
    }

    /// Reconstruct the shards listed in `want` into caller-owned buffers
    /// (resized and overwritten, allocations reused) — the repair-loop
    /// mirror of [`Self::encode_into`]: no per-shard allocation, fused
    /// tiled accumulation over the survivors, and the per-erasure-pattern
    /// decode matrix comes from the memoized cache.
    ///
    /// `shards` has k+m entries (data then parity): `Some` for survivors,
    /// `None` for erasures. `want` lists the shard indices to materialize
    /// (data or parity, typically the erased ones); `out` supplies one
    /// buffer per `want` entry.
    pub fn reconstruct_into(
        &self,
        shards: &[Option<&[u8]>],
        want: &[usize],
        out: &mut [Vec<u8>],
    ) -> Result<(), RsError> {
        if shards.len() != self.k + self.m {
            return Err(RsError::WrongChunkCount {
                expected: self.k + self.m,
                got: shards.len(),
            });
        }
        if out.len() != want.len() {
            return Err(RsError::WrongChunkCount {
                expected: want.len(),
                got: out.len(),
            });
        }
        if want.iter().any(|&w| w >= self.k + self.m) {
            return Err(RsError::InvalidParams);
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(RsError::TooFewShards {
                present: present.len(),
                need: self.k,
            });
        }
        let n = shards[present[0]].expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].expect("present").len() != n)
        {
            return Err(RsError::ChunkSizeMismatch);
        }
        if want.is_empty() {
            return Ok(());
        }

        // Decode matrix: rows of `enc` for the first k survivors. The
        // inversion is memoized per erasure pattern — repeated repairs with
        // the same missing set skip Gauss-Jordan entirely.
        let use_rows: Vec<usize> = present.iter().copied().take(self.k).collect();
        let dec = self
            .decode_cache
            .lock()
            .expect("decode cache poisoned")
            .get_or_insert_with(&use_rows, || {
                let sub = self.enc.select_rows(&use_rows);
                sub.invert().expect("any k rows of an MDS matrix invert")
            });

        // Every wanted shard is a GF-linear combination of the k chosen
        // survivors: data row d is dec[d], parity row p is (parity_row(p)
        // × dec). Resolving the combined coefficients up front lets one
        // fused pass read each survivor once while updating every output.
        let w = want.len();
        // Column-major: cols[s*w + o] multiplies survivor s into output o.
        let mut cols = vec![0u8; self.k * w];
        for (o, &shard) in want.iter().enumerate() {
            for s in 0..self.k {
                cols[s * w + o] = if shard < self.k {
                    dec[(shard, s)]
                } else {
                    let p = shard - self.k;
                    let mut c = 0u8;
                    for j in 0..self.k {
                        c ^= gf256::mul(self.parity_rows[p * self.k + j], dec[(j, s)]);
                    }
                    c
                };
            }
        }
        for buf in out.iter_mut() {
            buf.clear();
            buf.resize(n, 0);
        }
        let mut off = 0;
        while off < n {
            let end = (off + gf256::FUSE_TILE).min(n);
            let mut dsts: Vec<&mut [u8]> = out.iter_mut().map(|b| &mut b[off..end]).collect();
            for (s, &row) in use_rows.iter().enumerate() {
                let chunk = shards[row].expect("present");
                gf256::mul_acc_multi(&cols[s * w..(s + 1) * w], &chunk[off..end], &mut dsts);
            }
            off = end;
        }
        Ok(())
    }

    /// Incrementally update parities after data chunk `j` changes from
    /// `old` to `new`: `P_p += coef[p][j] · (old ⊕ new)`. This is the
    /// small-write optimization DFSs use to avoid re-reading the stripe.
    pub fn update_parities(
        &self,
        j: usize,
        old: &[u8],
        new: &[u8],
        parities: &mut [Vec<u8>],
    ) -> Result<(), RsError> {
        if j >= self.k || parities.len() != self.m {
            return Err(RsError::InvalidParams);
        }
        if old.len() != new.len() || parities.iter().any(|p| p.len() != old.len()) {
            return Err(RsError::ChunkSizeMismatch);
        }
        let delta: Vec<u8> = old.iter().zip(new).map(|(a, b)| a ^ b).collect();
        for (p, parity) in parities.iter_mut().enumerate() {
            gf256::mul_acc_slice(self.parity_coef(p, j), &delta, parity);
        }
        Ok(())
    }

    /// Split a byte buffer into k equal chunks, zero-padding the tail.
    /// Returns (chunks, chunk_len).
    pub fn split(&self, data: &[u8]) -> (Vec<Vec<u8>>, usize) {
        let chunk_len = data.len().div_ceil(self.k).max(1);
        let mut out = Vec::with_capacity(self.k);
        for j in 0..self.k {
            let start = (j * chunk_len).min(data.len());
            let end = ((j + 1) * chunk_len).min(data.len());
            let mut c = data[start..end].to_vec();
            c.resize(chunk_len, 0);
            out.push(c);
        }
        (out, chunk_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, n: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..k)
            .map(|j| {
                (0..n)
                    .map(|i| (i as u8).wrapping_mul(31).wrapping_add(j as u8 ^ seed))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_produces_m_parities() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 128, 1);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let p = rs.encode(&refs).expect("encode");
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|x| x.len() == 128));
        let mut shards: Vec<&[u8]> = refs.clone();
        shards.push(&p[0]);
        shards.push(&p[1]);
        assert!(rs.verify(&shards).expect("verify"));
    }

    #[test]
    fn corruption_fails_verification() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 64, 2);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut p = rs.encode(&refs).expect("encode");
        p[1][10] ^= 0xFF;
        let mut shards: Vec<&[u8]> = refs.clone();
        shards.push(&p[0]);
        shards.push(&p[1]);
        assert!(!rs.verify(&shards).expect("verify"));
    }

    #[test]
    fn recovers_any_m_erasures_exhaustively_rs_3_2() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 90, 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = rs.encode(&refs).expect("encode");
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parities.clone()).collect();

        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                rs.reconstruct(&mut shards).expect("reconstruct");
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().expect("filled"), &full[i], "erased ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_rejected() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let mut shards: Vec<Option<Vec<u8>>> = vec![Some(vec![1, 2]), None, None];
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(RsError::TooFewShards {
                present: 1,
                need: 2
            })
        );
    }

    #[test]
    fn rs_6_3_random_erasures() {
        let rs = ReedSolomon::new(6, 3).expect("params");
        let data = sample_data(6, 257, 4);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = rs.encode(&refs).expect("encode");
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parities).collect();
        // A few deterministic erasure patterns of size m = 3.
        for pattern in [[0, 1, 2], [3, 6, 8], [0, 4, 7], [5, 6, 7], [2, 3, 8]] {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            rs.reconstruct(&mut shards).expect("reconstruct");
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().expect("filled"), &full[i], "{pattern:?}");
            }
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert_eq!(ReedSolomon::new(0, 2).unwrap_err(), RsError::InvalidParams);
        assert_eq!(ReedSolomon::new(2, 0).unwrap_err(), RsError::InvalidParams);
        assert_eq!(
            ReedSolomon::new(200, 56).unwrap_err(),
            RsError::InvalidParams
        );
        assert!(ReedSolomon::new(200, 55).is_ok());
    }

    #[test]
    fn mismatched_chunk_sizes_rejected() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let a = vec![1u8; 10];
        let b = vec![2u8; 11];
        assert_eq!(
            rs.encode(&[&a, &b]).unwrap_err(),
            RsError::ChunkSizeMismatch
        );
    }

    #[test]
    fn split_pads_and_covers() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data: Vec<u8> = (0..10).collect();
        let (chunks, len) = rs.split(&data);
        assert_eq!(len, 4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], vec![0, 1, 2, 3]);
        assert_eq!(chunks[1], vec![4, 5, 6, 7]);
        assert_eq!(chunks[2], vec![8, 9, 0, 0]);
    }

    #[test]
    fn incremental_update_matches_full_reencode() {
        let rs = ReedSolomon::new(4, 2).expect("params");
        let mut data = sample_data(4, 333, 8);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parities = rs.encode(&refs).expect("encode");
        // Mutate chunk 2 and update incrementally.
        let old = data[2].clone();
        for (i, b) in data[2].iter_mut().enumerate() {
            *b = b.wrapping_add(i as u8 ^ 0x5A);
        }
        rs.update_parities(2, &old, &data[2], &mut parities)
            .expect("update");
        let refs2: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let full = rs.encode(&refs2).expect("encode");
        assert_eq!(parities, full, "incremental must equal re-encode");
    }

    #[test]
    fn incremental_update_rejects_bad_args() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let mut p = vec![vec![0u8; 4]];
        assert_eq!(
            rs.update_parities(5, &[0; 4], &[0; 4], &mut p),
            Err(RsError::InvalidParams)
        );
        assert_eq!(
            rs.update_parities(0, &[0; 3], &[0; 4], &mut p),
            Err(RsError::ChunkSizeMismatch)
        );
    }

    #[test]
    fn vandermonde_and_cauchy_codes_both_recover() {
        // Same data, two constructions: both recover from m erasures.
        let data = sample_data(3, 100, 5);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let rs = ReedSolomon::new(3, 2).expect("params");
        let vp = rs.encode(&refs).expect("vandermonde encode");
        let cp = crate::cauchy::cauchy_encode(3, 2, &refs);
        // The matrices differ, so parities differ; both must verify & decode.
        assert_ne!(vp, cp, "distinct constructions");
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(vp.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[4] = None;
        rs.reconstruct(&mut shards).expect("recover");
        assert_eq!(shards[0].as_ref().expect("chunk"), &data[0]);
    }

    #[test]
    fn encode_into_reuses_buffers_and_matches_encode() {
        let rs = ReedSolomon::new(4, 3).expect("params");
        let data = sample_data(4, 50_000, 11);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let fresh = rs.encode(&refs).expect("encode");
        // Dirty, differently-sized buffers must come out identical.
        let mut reused: Vec<Vec<u8>> = vec![vec![0xEE; 17], Vec::new(), vec![1; 100_000]];
        rs.encode_into(&refs, &mut reused).expect("encode_into");
        assert_eq!(fresh, reused);
        // Second call reuses capacity (no growth needed).
        let cap_before: Vec<usize> = reused.iter().map(|v| v.capacity()).collect();
        rs.encode_into(&refs, &mut reused).expect("encode_into");
        let cap_after: Vec<usize> = reused.iter().map(|v| v.capacity()).collect();
        assert_eq!(cap_before, cap_after, "no reallocation on reuse");
    }

    #[test]
    fn encode_into_rejects_wrong_parity_count() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let a = vec![1u8; 8];
        let b = vec![2u8; 8];
        let mut p: Vec<Vec<u8>> = vec![Vec::new(), Vec::new()];
        assert_eq!(
            rs.encode_into(&[&a, &b], &mut p).unwrap_err(),
            RsError::WrongChunkCount {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn repeated_repairs_hit_the_decode_cache() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 64, 6);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = rs.encode(&refs).expect("encode");
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parities).collect();
        for _ in 0..5 {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[0] = None;
            shards[3] = None;
            rs.reconstruct(&mut shards).expect("reconstruct");
            assert_eq!(shards[0].as_ref().expect("filled"), &full[0]);
        }
        let (hits, misses) = rs.decode_cache_stats();
        assert_eq!(misses, 1, "one inversion for a repeated pattern");
        assert_eq!(hits, 4, "subsequent repairs reuse it");
    }

    #[test]
    fn reconstruct_into_matches_reconstruct_and_reuses_buffers() {
        let rs = ReedSolomon::new(6, 3).expect("params");
        let data = sample_data(6, 4096, 12);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = rs.encode(&refs).expect("encode");
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parities).collect();
        // Erase a mix of data and parity shards.
        let missing = [1usize, 4, 7];
        let shards: Vec<Option<&[u8]>> = full
            .iter()
            .enumerate()
            .map(|(i, s)| (!missing.contains(&i)).then_some(s.as_slice()))
            .collect();
        // Dirty, differently-sized output buffers must come out exact.
        let mut out: Vec<Vec<u8>> = vec![vec![0xEE; 9], Vec::new(), vec![1; 10_000]];
        rs.reconstruct_into(&shards, &missing, &mut out)
            .expect("reconstruct_into");
        for (o, &i) in missing.iter().enumerate() {
            assert_eq!(out[o], full[i], "shard {i}");
        }
        // Second call reuses capacity (no reallocation).
        let cap_before: Vec<usize> = out.iter().map(|v| v.capacity()).collect();
        rs.reconstruct_into(&shards, &missing, &mut out)
            .expect("reconstruct_into");
        let cap_after: Vec<usize> = out.iter().map(|v| v.capacity()).collect();
        assert_eq!(cap_before, cap_after, "no reallocation on reuse");
    }

    #[test]
    fn complete_but_inconsistent_shards_still_rejected() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let mut shards = vec![Some(vec![1u8; 4]), Some(vec![2u8; 5]), Some(vec![3u8; 4])];
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(RsError::ChunkSizeMismatch),
            "a complete shard set is validated, not waved through"
        );
    }

    #[test]
    fn reconstruct_into_rejects_bad_args() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let a = vec![1u8; 8];
        let b = vec![2u8; 8];
        let shards: Vec<Option<&[u8]>> = vec![Some(&a), Some(&b), None];
        let mut out = vec![Vec::new(); 2];
        assert_eq!(
            rs.reconstruct_into(&shards, &[2], &mut out).unwrap_err(),
            RsError::WrongChunkCount {
                expected: 1,
                got: 2
            }
        );
        let mut one = vec![Vec::new()];
        assert_eq!(
            rs.reconstruct_into(&shards, &[3], &mut one).unwrap_err(),
            RsError::InvalidParams
        );
        let short: Vec<Option<&[u8]>> = vec![Some(&a), None, None];
        assert_eq!(
            rs.reconstruct_into(&short, &[1], &mut one).unwrap_err(),
            RsError::TooFewShards {
                present: 1,
                need: 2
            }
        );
    }

    #[test]
    fn parity_rows_match_matrix() {
        let rs = ReedSolomon::new(5, 3).expect("params");
        for p in 0..3 {
            for j in 0..5 {
                assert_eq!(rs.parity_coef(p, j), rs.enc[(5 + p, j)]);
                assert_eq!(rs.parity_row(p)[j], rs.enc[(5 + p, j)]);
            }
        }
    }

    #[test]
    fn fig12_shape_rs_3_2() {
        // Fig 12: encoding matrix (5×3) times data (3×1) yields the 3 data
        // chunks verbatim plus 2 parities.
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 16, 9);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = rs.encode(&refs).expect("encode");
        // Systematic: identity rows return data unchanged — implied by the
        // encode API storing data verbatim; check coefficient structure.
        for j in 0..3 {
            for jj in 0..3 {
                // enc rows 0..k are the identity.
                let c = if j == jj { 1 } else { 0 };
                assert_eq!(rs.enc[(j, jj)], c);
            }
        }
        assert_eq!(parities.len(), 2);
    }
}
