//! Systematic Reed-Solomon codes RS(k, m): k data chunks, m parity chunks,
//! any m erasures recoverable (maximum distance separable, §VI of the
//! paper).
//!
//! The encoding matrix is Vandermonde-derived and systematic: a (k+m)×k
//! Vandermonde matrix is normalized by the inverse of its top k×k square so
//! the first k rows become the identity (data chunks are stored verbatim,
//! "k of k+m encoded chunks are identical to the original k data chunks").

use crate::gf256;
use crate::matrix::Matrix;

/// A Reed-Solomon code instance.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// Full systematic encoding matrix, (k+m)×k.
    enc: Matrix,
}

/// Errors from encode/reconstruct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    WrongChunkCount { expected: usize, got: usize },
    ChunkSizeMismatch,
    TooFewShards { present: usize, need: usize },
    InvalidParams,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::WrongChunkCount { expected, got } => {
                write!(f, "expected {expected} chunks, got {got}")
            }
            RsError::ChunkSizeMismatch => write!(f, "all chunks must have equal length"),
            RsError::TooFewShards { present, need } => {
                write!(f, "only {present} shards present, need {need}")
            }
            RsError::InvalidParams => write!(f, "invalid RS parameters"),
        }
    }
}

impl std::error::Error for RsError {}

impl ReedSolomon {
    /// Create an RS(k, m) code. Requires 1 ≤ k, 1 ≤ m, k+m ≤ 255.
    pub fn new(k: usize, m: usize) -> Result<ReedSolomon, RsError> {
        if k == 0 || m == 0 || k + m > 255 {
            return Err(RsError::InvalidParams);
        }
        let v = Matrix::vandermonde(k + m, k);
        let top_inv = v
            .select_rows(&(0..k).collect::<Vec<_>>())
            .invert()
            .expect("vandermonde top square is invertible");
        let enc = v.mul(&top_inv);
        debug_assert_eq!(
            enc.select_rows(&(0..k).collect::<Vec<_>>()),
            Matrix::identity(k),
            "systematic code: top must be identity"
        );
        Ok(ReedSolomon { k, m, enc })
    }

    pub fn k(&self) -> usize {
        self.k
    }
    pub fn m(&self) -> usize {
        self.m
    }

    /// Coefficient multiplying data chunk `j` in parity `p`
    /// (the per-packet streaming path uses these directly).
    pub fn parity_coef(&self, p: usize, j: usize) -> u8 {
        self.enc[(self.k + p, j)]
    }

    /// Row of coefficients for parity `p`.
    pub fn parity_row(&self, p: usize) -> &[u8] {
        self.enc.row(self.k + p)
    }

    /// Encode: compute the m parity chunks for `data` (k equal-size chunks).
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.k {
            return Err(RsError::WrongChunkCount {
                expected: self.k,
                got: data.len(),
            });
        }
        let n = data[0].len();
        if data.iter().any(|c| c.len() != n) {
            return Err(RsError::ChunkSizeMismatch);
        }
        let mut parities = vec![vec![0u8; n]; self.m];
        for (p, parity) in parities.iter_mut().enumerate() {
            for (j, chunk) in data.iter().enumerate() {
                gf256::mul_acc_slice(self.parity_coef(p, j), chunk, parity);
            }
        }
        Ok(parities)
    }

    /// Verify that `shards` (k data followed by m parity) are consistent.
    pub fn verify(&self, shards: &[&[u8]]) -> Result<bool, RsError> {
        if shards.len() != self.k + self.m {
            return Err(RsError::WrongChunkCount {
                expected: self.k + self.m,
                got: shards.len(),
            });
        }
        let parities = self.encode(&shards[..self.k])?;
        Ok(parities
            .iter()
            .zip(&shards[self.k..])
            .all(|(computed, stored)| computed.as_slice() == *stored))
    }

    /// Reconstruct all missing shards in place. `shards` has k+m entries
    /// (data then parity); `None` marks an erasure. Needs ≥ k survivors.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.k + self.m {
            return Err(RsError::WrongChunkCount {
                expected: self.k + self.m,
                got: shards.len(),
            });
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(RsError::TooFewShards {
                present: present.len(),
                need: self.k,
            });
        }
        let n = shards[present[0]].as_ref().expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present").len() != n)
        {
            return Err(RsError::ChunkSizeMismatch);
        }
        if present
            .iter()
            .take(self.k)
            .eq((0..self.k).collect::<Vec<_>>().iter())
            && shards.iter().all(|s| s.is_some())
        {
            return Ok(()); // nothing missing
        }

        // Decode matrix: rows of `enc` for the first k survivors.
        let use_rows: Vec<usize> = present.iter().copied().take(self.k).collect();
        let sub = self.enc.select_rows(&use_rows);
        let dec = sub.invert().expect("any k rows of an MDS matrix invert");

        // Recover data chunks: data = dec × survivors.
        let mut data: Vec<Vec<u8>> = vec![vec![0u8; n]; self.k];
        for (out_row, d) in data.iter_mut().enumerate() {
            for (in_row, &shard_idx) in use_rows.iter().enumerate() {
                let c = dec[(out_row, in_row)];
                let src = shards[shard_idx].as_ref().expect("present");
                gf256::mul_acc_slice(c, src, d);
            }
        }

        // Fill in missing data shards.
        for (j, d) in data.iter().enumerate() {
            if shards[j].is_none() {
                shards[j] = Some(d.clone());
            }
        }
        // Recompute missing parity shards.
        if shards[self.k..].iter().any(|s| s.is_none()) {
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parities = self.encode(&refs)?;
            for (p, parity) in parities.into_iter().enumerate() {
                if shards[self.k + p].is_none() {
                    shards[self.k + p] = Some(parity);
                }
            }
        }
        Ok(())
    }

    /// Incrementally update parities after data chunk `j` changes from
    /// `old` to `new`: `P_p += coef[p][j] · (old ⊕ new)`. This is the
    /// small-write optimization DFSs use to avoid re-reading the stripe.
    pub fn update_parities(
        &self,
        j: usize,
        old: &[u8],
        new: &[u8],
        parities: &mut [Vec<u8>],
    ) -> Result<(), RsError> {
        if j >= self.k || parities.len() != self.m {
            return Err(RsError::InvalidParams);
        }
        if old.len() != new.len() || parities.iter().any(|p| p.len() != old.len()) {
            return Err(RsError::ChunkSizeMismatch);
        }
        let delta: Vec<u8> = old.iter().zip(new).map(|(a, b)| a ^ b).collect();
        for (p, parity) in parities.iter_mut().enumerate() {
            gf256::mul_acc_slice(self.parity_coef(p, j), &delta, parity);
        }
        Ok(())
    }

    /// Split a byte buffer into k equal chunks, zero-padding the tail.
    /// Returns (chunks, chunk_len).
    pub fn split(&self, data: &[u8]) -> (Vec<Vec<u8>>, usize) {
        let chunk_len = data.len().div_ceil(self.k).max(1);
        let mut out = Vec::with_capacity(self.k);
        for j in 0..self.k {
            let start = (j * chunk_len).min(data.len());
            let end = ((j + 1) * chunk_len).min(data.len());
            let mut c = data[start..end].to_vec();
            c.resize(chunk_len, 0);
            out.push(c);
        }
        (out, chunk_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, n: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..k)
            .map(|j| {
                (0..n)
                    .map(|i| (i as u8).wrapping_mul(31).wrapping_add(j as u8 ^ seed))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_produces_m_parities() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 128, 1);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let p = rs.encode(&refs).expect("encode");
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|x| x.len() == 128));
        let mut shards: Vec<&[u8]> = refs.clone();
        shards.push(&p[0]);
        shards.push(&p[1]);
        assert!(rs.verify(&shards).expect("verify"));
    }

    #[test]
    fn corruption_fails_verification() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 64, 2);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut p = rs.encode(&refs).expect("encode");
        p[1][10] ^= 0xFF;
        let mut shards: Vec<&[u8]> = refs.clone();
        shards.push(&p[0]);
        shards.push(&p[1]);
        assert!(!rs.verify(&shards).expect("verify"));
    }

    #[test]
    fn recovers_any_m_erasures_exhaustively_rs_3_2() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 90, 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = rs.encode(&refs).expect("encode");
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parities.clone()).collect();

        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                rs.reconstruct(&mut shards).expect("reconstruct");
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().expect("filled"), &full[i], "erased ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_rejected() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let mut shards: Vec<Option<Vec<u8>>> = vec![Some(vec![1, 2]), None, None];
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(RsError::TooFewShards {
                present: 1,
                need: 2
            })
        );
    }

    #[test]
    fn rs_6_3_random_erasures() {
        let rs = ReedSolomon::new(6, 3).expect("params");
        let data = sample_data(6, 257, 4);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = rs.encode(&refs).expect("encode");
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parities).collect();
        // A few deterministic erasure patterns of size m = 3.
        for pattern in [[0, 1, 2], [3, 6, 8], [0, 4, 7], [5, 6, 7], [2, 3, 8]] {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            rs.reconstruct(&mut shards).expect("reconstruct");
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().expect("filled"), &full[i], "{pattern:?}");
            }
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert_eq!(ReedSolomon::new(0, 2).unwrap_err(), RsError::InvalidParams);
        assert_eq!(ReedSolomon::new(2, 0).unwrap_err(), RsError::InvalidParams);
        assert_eq!(
            ReedSolomon::new(200, 56).unwrap_err(),
            RsError::InvalidParams
        );
        assert!(ReedSolomon::new(200, 55).is_ok());
    }

    #[test]
    fn mismatched_chunk_sizes_rejected() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let a = vec![1u8; 10];
        let b = vec![2u8; 11];
        assert_eq!(
            rs.encode(&[&a, &b]).unwrap_err(),
            RsError::ChunkSizeMismatch
        );
    }

    #[test]
    fn split_pads_and_covers() {
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data: Vec<u8> = (0..10).collect();
        let (chunks, len) = rs.split(&data);
        assert_eq!(len, 4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], vec![0, 1, 2, 3]);
        assert_eq!(chunks[1], vec![4, 5, 6, 7]);
        assert_eq!(chunks[2], vec![8, 9, 0, 0]);
    }

    #[test]
    fn incremental_update_matches_full_reencode() {
        let rs = ReedSolomon::new(4, 2).expect("params");
        let mut data = sample_data(4, 333, 8);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let mut parities = rs.encode(&refs).expect("encode");
        // Mutate chunk 2 and update incrementally.
        let old = data[2].clone();
        for (i, b) in data[2].iter_mut().enumerate() {
            *b = b.wrapping_add(i as u8 ^ 0x5A);
        }
        rs.update_parities(2, &old, &data[2], &mut parities)
            .expect("update");
        let refs2: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let full = rs.encode(&refs2).expect("encode");
        assert_eq!(parities, full, "incremental must equal re-encode");
    }

    #[test]
    fn incremental_update_rejects_bad_args() {
        let rs = ReedSolomon::new(2, 1).expect("params");
        let mut p = vec![vec![0u8; 4]];
        assert_eq!(
            rs.update_parities(5, &[0; 4], &[0; 4], &mut p),
            Err(RsError::InvalidParams)
        );
        assert_eq!(
            rs.update_parities(0, &[0; 3], &[0; 4], &mut p),
            Err(RsError::ChunkSizeMismatch)
        );
    }

    #[test]
    fn vandermonde_and_cauchy_codes_both_recover() {
        // Same data, two constructions: both recover from m erasures.
        let data = sample_data(3, 100, 5);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let rs = ReedSolomon::new(3, 2).expect("params");
        let vp = rs.encode(&refs).expect("vandermonde encode");
        let cp = crate::cauchy::cauchy_encode(3, 2, &refs);
        // The matrices differ, so parities differ; both must verify & decode.
        assert_ne!(vp, cp, "distinct constructions");
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(vp.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[4] = None;
        rs.reconstruct(&mut shards).expect("recover");
        assert_eq!(shards[0].as_ref().expect("chunk"), &data[0]);
    }

    #[test]
    fn fig12_shape_rs_3_2() {
        // Fig 12: encoding matrix (5×3) times data (3×1) yields the 3 data
        // chunks verbatim plus 2 parities.
        let rs = ReedSolomon::new(3, 2).expect("params");
        let data = sample_data(3, 16, 9);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parities = rs.encode(&refs).expect("encode");
        // Systematic: identity rows return data unchanged — implied by the
        // encode API storing data verbatim; check coefficient structure.
        for j in 0..3 {
            for jj in 0..3 {
                // enc rows 0..k are the identity.
                let c = if j == jj { 1 } else { 0 };
                assert_eq!(rs.enc[(j, jj)], c);
            }
        }
        assert_eq!(parities.len(), 2);
    }
}
