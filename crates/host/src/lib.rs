//! # nadfs-host
//!
//! Host-side models for storage nodes: byte-accurate host memory (the
//! storage target), the PCIe/DMA engine connecting NIC and memory, and a
//! serially-occupied CPU cost model used by the CPU-based baselines.

pub mod cpu;
pub mod dma;
pub mod memory;

pub use cpu::{Cpu, CpuCosts};
pub use dma::{DmaConfig, DmaEngine};
pub use memory::{HostMemory, SharedMemory};
