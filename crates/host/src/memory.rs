//! Host memory: the storage target behind each storage node's NIC.
//!
//! The paper deliberately abstracts the storage medium ("we assume that the
//! storage medium can digest data at network bandwidth or higher", §III) —
//! for in-memory/NVMM file systems handlers write directly to main memory.
//! We model exactly that: a sparse, page-granular byte store that actually
//! holds the written bytes, so integration tests can verify that replicas
//! are byte-identical and parity chunks are algebraically correct.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Base of the device arena: transient NIC-owned allocations (gather
/// staging, reconstruction slots) live far above the data arena, so
/// however long a run gets, device scratch can never bump into
/// addresses the control plane handed out for chunk placement.
const DEVICE_BASE: u64 = 1 << 48;

/// Sparse byte-addressable memory with a bump allocator.
pub struct HostMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    next_alloc: u64,
    next_device: u64,
    bytes_written: u64,
}

impl Default for HostMemory {
    fn default() -> Self {
        HostMemory {
            pages: HashMap::new(),
            next_alloc: PAGE_SIZE as u64,
            next_device: DEVICE_BASE,
            bytes_written: 0,
        }
    }
}

/// Shared handle: the NIC (DMA engine), the CPU model, and test code all
/// reference the same memory.
pub type SharedMemory = Rc<RefCell<HostMemory>>;

impl HostMemory {
    pub fn new() -> SharedMemory {
        // Leave the zero page unallocated so address 0 can serve as a
        // conventional "null" in tests.
        Rc::new(RefCell::new(HostMemory::default()))
    }

    /// Allocate a region of `len` bytes, returning its base address.
    /// Allocations are page-aligned, which keeps regions disjoint.
    pub fn alloc(&mut self, len: u64) -> u64 {
        let base = self.next_alloc;
        let pages = len.div_ceil(PAGE_SIZE as u64).max(1);
        self.next_alloc += pages * PAGE_SIZE as u64;
        base
    }

    /// Allocate `len` bytes of device scratch (NIC staging): same bump
    /// discipline as [`Self::alloc`] but in the device arena, disjoint
    /// from every data-arena and placement address by construction.
    /// Pair with [`Self::release`] when the transient use ends.
    pub fn alloc_device(&mut self, len: u64) -> u64 {
        let base = self.next_device;
        let pages = len.div_ceil(PAGE_SIZE as u64).max(1);
        self.next_device += pages * PAGE_SIZE as u64;
        base
    }

    /// Drop the resident pages backing `[addr, addr + len)`. Allocations
    /// are page-aligned and disjoint, so releasing the rounded-up page
    /// span of an allocation can only touch that allocation's pages.
    /// Released ranges read as zero again.
    pub fn release(&mut self, addr: u64, len: u64) {
        let pages = len.div_ceil(PAGE_SIZE as u64).max(1);
        let first = addr >> PAGE_SHIFT;
        for page in first..first + pages {
            self.pages.remove(&page);
        }
    }

    /// Write `data` at `addr`, creating pages on demand.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.bytes_written += data.len() as u64;
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Read `len` bytes at `addr`; untouched bytes read as zero.
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(len - off);
            if let Some(p) = self.pages.get(&page) {
                out[off..off + n].copy_from_slice(&p[in_page..in_page + n]);
            }
            off += n;
        }
        out
    }

    /// Read `out.len()` bytes at `addr` into a caller-owned buffer —
    /// the allocation-free variant of [`Self::read`] the streaming EC
    /// aggregation loops use. Untouched bytes read as zero.
    pub fn read_into(&self, addr: u64, out: &mut [u8]) {
        let len = out.len();
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(len - off);
            match self.pages.get(&page) {
                Some(p) => out[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => out[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// XOR `data` into memory at `addr` (used by CPU-side EC aggregation
    /// fallback and by the firmware EC engine model).
    pub fn xor_in(&mut self, addr: u64, data: &[u8]) {
        let mut cur = self.read(addr, data.len());
        for (c, d) in cur.iter_mut().zip(data) {
            *c ^= d;
        }
        self.write(addr, &cur);
    }

    /// Total bytes ever written (diagnostic).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of resident pages (diagnostic; sparse footprint).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_within_page() {
        let m = HostMemory::new();
        m.borrow_mut().write(100, b"hello");
        assert_eq!(m.borrow().read(100, 5), b"hello");
    }

    #[test]
    fn write_read_across_page_boundary() {
        let m = HostMemory::new();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let addr = PAGE_SIZE as u64 - 123;
        m.borrow_mut().write(addr, &data);
        assert_eq!(m.borrow().read(addr, data.len()), data);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = HostMemory::new();
        assert_eq!(m.borrow().read(1 << 30, 8), vec![0u8; 8]);
        assert_eq!(m.borrow().resident_pages(), 0);
    }

    #[test]
    fn alloc_regions_are_disjoint() {
        let m = HostMemory::new();
        let a = m.borrow_mut().alloc(5000);
        let b = m.borrow_mut().alloc(1);
        let c = m.borrow_mut().alloc(0);
        assert!(b >= a + 5000);
        assert!(c > b);
        m.borrow_mut().write(a, &vec![0xAA; 5000]);
        m.borrow_mut().write(b, &[0xBB]);
        assert_eq!(m.borrow().read(a, 5000), vec![0xAA; 5000]);
        assert_eq!(m.borrow().read(b, 1), vec![0xBB]);
    }

    #[test]
    fn xor_in_accumulates() {
        let m = HostMemory::new();
        m.borrow_mut().xor_in(64, &[0b1010, 0b1111]);
        m.borrow_mut().xor_in(64, &[0b0110, 0b1111]);
        assert_eq!(m.borrow().read(64, 2), vec![0b1100, 0b0000]);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let m = HostMemory::new();
        m.borrow_mut().write(0, &[1, 1, 1, 1]);
        m.borrow_mut().write(1, &[2, 2]);
        assert_eq!(m.borrow().read(0, 4), vec![1, 2, 2, 1]);
        assert_eq!(m.borrow().bytes_written(), 6);
    }
}
