//! Host CPU cost model.
//!
//! The CPU-based baselines (RPC, RPC+RDMA, CPU-Ring/PBT forwarding) pay for
//! notification latency, per-request software processing, and memory copies.
//! This module models a single serially-occupied core per storage node with
//! parameterized costs; the protocol drivers in `nadfs-core` sequence their
//! events through it.

use nadfs_simnet::{Bandwidth, Dur, Time};

/// CPU cost parameters (defaults documented in DESIGN.md §3.3).
#[derive(Clone, Debug)]
pub struct CpuCosts {
    /// NIC completion → CPU notices (interrupt/poll latency).
    pub poll_notify: Dur,
    /// Dispatch an RPC request to its handler.
    pub rpc_dispatch: Dur,
    /// Validate a client request (capability check) in software.
    /// The NIC handler equivalent costs 200 cycles; software pays the same
    /// work plus cache misses — we charge the same 200 ns by default so the
    /// comparison isolates *data-path placement*, not code quality.
    pub validate: Dur,
    /// Post a send/RDMA work request (doorbell, WQE build).
    pub post_send: Dur,
    /// Effective single-copy memcpy bandwidth for buffered data paths.
    pub memcpy_bw: Bandwidth,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            poll_notify: Dur::from_ns(400),
            rpc_dispatch: Dur::from_ns(150),
            validate: Dur::from_ns(200),
            post_send: Dur::from_ns(250),
            memcpy_bw: Bandwidth::from_gbyte_per_sec(26),
        }
    }
}

/// A serially-occupied CPU core.
pub struct Cpu {
    pub costs: CpuCosts,
    busy_until: Time,
    pub tasks_run: u64,
    pub busy_time: Dur,
}

impl Cpu {
    pub fn new(costs: CpuCosts) -> Cpu {
        Cpu {
            costs,
            busy_until: Time::ZERO,
            tasks_run: 0,
            busy_time: Dur::ZERO,
        }
    }

    /// Run a task costing `cost`, starting no earlier than `ready`.
    /// Returns its completion time.
    pub fn exec(&mut self, ready: Time, cost: Dur) -> Time {
        let start = ready.max(self.busy_until);
        let done = start + cost;
        self.busy_until = done;
        self.tasks_run += 1;
        self.busy_time += cost;
        done
    }

    /// Copy cost for `len` bytes at the configured memcpy bandwidth.
    pub fn memcpy_cost(&self, len: u64) -> Dur {
        self.costs.memcpy_bw.tx_time(len)
    }

    /// Convenience: notification + dispatch latency for NIC → CPU handoff.
    pub fn wakeup_cost(&self) -> Dur {
        self.costs.poll_notify + self.costs.rpc_dispatch
    }

    pub fn busy_until(&self) -> Time {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_serialize() {
        let mut cpu = Cpu::new(CpuCosts::default());
        let a = cpu.exec(Time::ZERO, Dur::from_ns(100));
        let b = cpu.exec(Time::ZERO, Dur::from_ns(50));
        assert_eq!(a, Time(100_000));
        assert_eq!(b, Time(150_000), "second task waits for the first");
        assert_eq!(cpu.tasks_run, 2);
        assert_eq!(cpu.busy_time, Dur::from_ns(150));
    }

    #[test]
    fn idle_gap_not_charged() {
        let mut cpu = Cpu::new(CpuCosts::default());
        cpu.exec(Time::ZERO, Dur::from_ns(10));
        let done = cpu.exec(Time(1_000_000), Dur::from_ns(10));
        assert_eq!(done, Time(1_010_000));
        assert_eq!(cpu.busy_time, Dur::from_ns(20));
    }

    #[test]
    fn memcpy_cost_scales_linearly() {
        let cpu = Cpu::new(CpuCosts::default());
        let one = cpu.memcpy_cost(1 << 20);
        let two = cpu.memcpy_cost(2 << 20);
        // tx_time rounds up per call, so allow 1 ps of slack.
        assert!(two.ps().abs_diff(one.ps() * 2) <= 1);
        // 1 MiB at 26 GB/s ≈ 40.3 us.
        assert!((one.as_us() - 40.3).abs() < 0.2, "{one}");
    }
}
