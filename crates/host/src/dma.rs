//! PCIe/DMA engine model.
//!
//! Moves data between a NIC and host memory over the system interconnect.
//! Characteristics the paper's comparisons rest on (§III, §V):
//! * a PCIe round trip costs hundreds of nanoseconds ("a PCIe round-trip can
//!   take up to 400 ns", citing Kalia et al.);
//! * DMA *writes* (NIC→host) are cheap and pipelined, DMA *reads*
//!   (host→NIC, needed to forward data from host memory) are slower — this
//!   asymmetry is what penalizes CPU- and HyperLoop-style forwarding.
//!
//! Each direction is an independently serializing channel with its own
//! bandwidth; an operation's completion time is returned to the caller,
//! which sequences its own events accordingly. Memory contents are mutated
//! eagerly; simulated time ordering is enforced by the callers acting only
//! at/after the returned completion times.

use bytes::Bytes;
use nadfs_simnet::{Bandwidth, Dur, Time};

use crate::memory::SharedMemory;

/// DMA engine cost parameters.
#[derive(Clone, Debug)]
pub struct DmaConfig {
    /// NIC → host (ingress writes). Provisioned at/above line rate per the
    /// paper's "storage ingests at network bandwidth" assumption.
    pub write_bw: Bandwidth,
    /// Host → NIC (egress reads / fetch for forwarding).
    pub read_bw: Bandwidth,
    /// One-way PCIe latency per operation.
    pub latency: Dur,
    /// Engine occupancy per descriptor (issue overhead).
    pub per_op: Dur,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            // 64 GB/s write direction: does not bottleneck a 400 Gbit/s NIC.
            write_bw: Bandwidth::from_gbyte_per_sec(64),
            // ~26 GB/s effective read direction (typical RNIC host-fetch;
            // calibrated to the paper's RPC-family asymptotes, DESIGN.md).
            read_bw: Bandwidth::from_gbyte_per_sec(26),
            latency: Dur::from_ns(200),
            per_op: Dur::from_ns(10),
        }
    }
}

/// The engine: two serializing channels over shared host memory.
pub struct DmaEngine {
    cfg: DmaConfig,
    mem: SharedMemory,
    write_busy_until: Time,
    read_busy_until: Time,
    /// Completion time of the latest write issued (flush horizon).
    last_write_done: Time,
    pub writes_issued: u64,
    pub reads_issued: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
}

impl DmaEngine {
    pub fn new(cfg: DmaConfig, mem: SharedMemory) -> DmaEngine {
        DmaEngine {
            cfg,
            mem,
            write_busy_until: Time::ZERO,
            read_busy_until: Time::ZERO,
            last_write_done: Time::ZERO,
            writes_issued: 0,
            reads_issued: 0,
            bytes_written: 0,
            bytes_read: 0,
        }
    }

    pub fn config(&self) -> &DmaConfig {
        &self.cfg
    }

    pub fn memory(&self) -> SharedMemory {
        self.mem.clone()
    }

    /// Issue a DMA write of `data` to host `addr` at time `now`.
    /// Returns the time at which the data is durably in host memory.
    pub fn write(&mut self, now: Time, addr: u64, data: &[u8]) -> Time {
        let start = now.max(self.write_busy_until) + self.cfg.per_op;
        let done = start + self.cfg.write_bw.tx_time(data.len() as u64) + self.cfg.latency;
        // The channel is occupied for the transfer (not the flight latency).
        self.write_busy_until = start + self.cfg.write_bw.tx_time(data.len() as u64);
        self.last_write_done = self.last_write_done.max(done);
        self.writes_issued += 1;
        self.bytes_written += data.len() as u64;
        self.mem.borrow_mut().write(addr, data);
        done
    }

    /// Issue a DMA read of `len` bytes from host `addr` at time `now`.
    /// Returns the fetched bytes and the time they are available at the NIC.
    pub fn read(&mut self, now: Time, addr: u64, len: usize) -> (Bytes, Time) {
        let start = now.max(self.read_busy_until) + self.cfg.per_op + self.cfg.latency;
        let done = start + self.cfg.read_bw.tx_time(len as u64);
        self.read_busy_until = done;
        self.reads_issued += 1;
        self.bytes_read += len as u64;
        let data = Bytes::from(self.mem.borrow().read(addr, len));
        (data, done)
    }

    /// DMA-read `out.len()` bytes from host `addr` into a caller-owned
    /// (e.g. pooled) buffer — same cost model as [`Self::read`], no
    /// allocation. Returns the time the bytes are available at the NIC.
    pub fn read_into(&mut self, now: Time, addr: u64, out: &mut [u8]) -> Time {
        let len = out.len();
        let start = now.max(self.read_busy_until) + self.cfg.per_op + self.cfg.latency;
        let done = start + self.cfg.read_bw.tx_time(len as u64);
        self.read_busy_until = done;
        self.reads_issued += 1;
        self.bytes_read += len as u64;
        self.mem.borrow().read_into(addr, out);
        done
    }

    /// Time at which every write issued so far is durable (the "RDMA flush"
    /// point the paper discusses under data persistence, §III-B-1).
    pub fn flush_horizon(&self) -> Time {
        self.last_write_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::HostMemory;

    fn engine() -> DmaEngine {
        DmaEngine::new(DmaConfig::default(), HostMemory::new())
    }

    #[test]
    fn write_completion_includes_latency_and_serialization() {
        let mut e = engine();
        let cfg = e.config().clone();
        let done = e.write(Time::ZERO, 0x1000, &[7u8; 4096]);
        let expect = cfg.per_op + cfg.write_bw.tx_time(4096) + cfg.latency;
        assert_eq!(done, Time::ZERO + expect);
        assert_eq!(e.memory().borrow().read(0x1000, 4096), vec![7u8; 4096]);
    }

    #[test]
    fn writes_serialize_on_the_channel() {
        let mut e = engine();
        let d1 = e.write(Time::ZERO, 0, &[0u8; 1 << 20]);
        let d2 = e.write(Time::ZERO, 1 << 20, &[0u8; 1 << 20]);
        assert!(d2 > d1);
        // Second transfer must start after the first's serialization.
        let cfg = e.config().clone();
        let ser = cfg.write_bw.tx_time(1 << 20);
        assert!(d2 >= Time::ZERO + ser + ser);
    }

    #[test]
    fn read_returns_written_bytes_with_read_cost() {
        let mut e = engine();
        e.write(Time::ZERO, 64, b"abcdef");
        let (data, done) = e.read(Time(1_000_000), 64, 6);
        assert_eq!(&data[..], b"abcdef");
        let cfg = e.config().clone();
        assert_eq!(
            done,
            Time(1_000_000) + cfg.per_op + cfg.latency + cfg.read_bw.tx_time(6)
        );
    }

    #[test]
    fn read_into_matches_read_in_data_and_cost() {
        let mut e = engine();
        e.write(Time::ZERO, 512, b"streaming-ec");
        let mut e2 = engine();
        e2.write(Time::ZERO, 512, b"streaming-ec");
        let (data, t1) = e.read(Time(500), 512, 12);
        let mut buf = vec![0xAAu8; 12];
        let t2 = e2.read_into(Time(500), 512, &mut buf);
        assert_eq!(&data[..], &buf[..]);
        assert_eq!(t1, t2, "identical cost model");
        assert_eq!(e2.reads_issued, 1);
        assert_eq!(e2.bytes_read, 12);
    }

    #[test]
    fn read_channel_is_slower_than_write_channel() {
        let mut e = engine();
        let w = e.write(Time::ZERO, 0, &[0u8; 1 << 20]);
        let mut e2 = engine();
        let (_, r) = e2.read(Time::ZERO, 0, 1 << 20);
        assert!(
            r.since(Time::ZERO).ps() > w.since(Time::ZERO).ps(),
            "DMA read must cost more than DMA write for equal size"
        );
    }

    #[test]
    fn flush_horizon_tracks_latest_write() {
        let mut e = engine();
        assert_eq!(e.flush_horizon(), Time::ZERO);
        let d1 = e.write(Time::ZERO, 0, &[1u8; 100]);
        assert_eq!(e.flush_horizon(), d1);
        let d2 = e.write(d1, 200, &[2u8; 100]);
        assert_eq!(e.flush_horizon(), d2);
        assert!(d2 > d1);
    }

    #[test]
    fn counters_account_operations() {
        let mut e = engine();
        e.write(Time::ZERO, 0, &[0u8; 10]);
        e.write(Time::ZERO, 0, &[0u8; 20]);
        e.read(Time::ZERO, 0, 5);
        assert_eq!(e.writes_issued, 2);
        assert_eq!(e.bytes_written, 30);
        assert_eq!(e.reads_issued, 1);
        assert_eq!(e.bytes_read, 5);
    }
}
