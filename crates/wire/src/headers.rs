//! DFS request headers (paper Fig 3): the generic DFS header, the write
//! request header (WRH) with its resiliency options (§V-A, §VI), and the
//! read request header (RRH).

use crate::capability::Capability;
use crate::sizes;

/// DFS operation carried in the generic DFS header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DfsOp {
    Write,
    Read,
}

/// Generic DFS header carried by the first packet of every request (§III-A):
/// identifies and authenticates the request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DfsHeader {
    /// Globally unique request id (paper: `greq_id`).
    pub greq_id: u64,
    pub op: DfsOp,
    pub client: u32,
    /// QoS scheduling principal this request is billed to. Packs into the
    /// upper 16 bits of the on-wire client field (node ids are small), so
    /// the wire size is unchanged. By default a client's own node id;
    /// background services use reserved ids (e.g. repair).
    pub tenant: u16,
    pub capability: Capability,
}

impl DfsHeader {
    pub const fn wire_size() -> u32 {
        sizes::DFS_HEADER
    }
}

/// Identity of a replica/parity target: network address + storage address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplicaCoord {
    pub node: u32,
    pub addr: u64,
}

/// Broadcast schedule for replication (§V-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BcastStrategy {
    /// Each replica forwards to exactly one successor.
    Ring,
    /// Pipelined binary tree: each replica forwards to up to two children.
    Pbt,
}

impl BcastStrategy {
    /// Maximum children a node has under this schedule (tree arity).
    pub fn arity(self) -> usize {
        match self {
            BcastStrategy::Ring => 1,
            BcastStrategy::Pbt => 2,
        }
    }
}

/// Reed-Solomon scheme parameters RS(k, m).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RsScheme {
    pub k: u8,
    pub m: u8,
}

impl RsScheme {
    pub const fn new(k: u8, m: u8) -> RsScheme {
        RsScheme { k, m }
    }
}

/// Role of the receiving storage node in the EC write (§VI-B: "indication of
/// whether this node stores data or parity chunks, determining the actions
/// performed by the handlers").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EcRole {
    /// This node stores data chunk `chunk_idx`; it must generate and forward
    /// intermediate parities to the parity nodes.
    Data { chunk_idx: u8 },
    /// This message carries intermediate parity `parity_idx` computed from
    /// data chunk `src_chunk`; the receiver aggregates (XORs) `k` such
    /// streams into the final parity chunk.
    Parity { parity_idx: u8, src_chunk: u8 },
}

/// EC parameters carried in the WRH.
#[derive(Clone, Debug, PartialEq)]
pub struct EcInfo {
    pub scheme: RsScheme,
    pub role: EcRole,
    /// Stripe identifier: all chunks and parities of one client write share it.
    pub stripe: u64,
    /// For `EcRole::Data`: coordinates of the m parity nodes.
    pub parity_coords: Vec<ReplicaCoord>,
}

/// Resiliency strategy option in the WRH (§VI-B: "the write request header
/// carries a resiliency strategy option ... followed by either replication
/// or EC parameters").
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Resiliency {
    #[default]
    None,
    Replicate {
        strategy: BcastStrategy,
        /// This node's virtual rank in the broadcast tree.
        vrank: u8,
        /// Coordinates of all replicas, indexed by virtual rank.
        coords: Vec<ReplicaCoord>,
    },
    ErasureCode(EcInfo),
}

/// Write request header (WRH).
#[derive(Clone, Debug, PartialEq)]
pub struct WriteReqHeader {
    /// Destination storage address on the receiving node.
    pub target_addr: u64,
    /// Total write length in bytes.
    pub len: u32,
    pub resiliency: Resiliency,
}

impl WriteReqHeader {
    pub fn wire_size(&self) -> u32 {
        let extra = match &self.resiliency {
            Resiliency::None => 0,
            Resiliency::Replicate { coords, .. } => {
                sizes::WRH_REPL_FIXED + coords.len() as u32 * sizes::REPLICA_COORD
            }
            Resiliency::ErasureCode(info) => {
                sizes::WRH_EC_FIXED + info.parity_coords.len() as u32 * sizes::REPLICA_COORD
            }
        };
        sizes::WRH_FIXED + extra
    }
}

/// Read request header (RRH).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadReqHeader {
    pub addr: u64,
    pub len: u32,
}

impl ReadReqHeader {
    pub const fn wire_size() -> u32 {
        sizes::RRH
    }
}

/// Maximum segments one gather read request may carry; the GRH must fit
/// the first (only) packet of the request alongside the DFS header.
pub const MAX_GATHER_SEGS: usize = 32;

/// One contiguous source range of an offloaded gather read. `coord.node`
/// equal to the coordinator means a local DMA read; other nodes are
/// fetched NIC-to-NIC into staging before streaming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatherSegment {
    pub coord: ReplicaCoord,
    pub len: u32,
    /// Destination offset within the streamed response flow (== the
    /// `offset` field of the response packets covering this segment).
    pub dest_off: u32,
    /// Shard index when this segment feeds a reconstruction; 0 otherwise.
    pub shard: u8,
}

/// One output range of a degraded gather: `len` bytes at `chunk_off`
/// within data chunk `chunk`, streamed to flow offset `dest_off`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatherCopy {
    pub chunk: u8,
    pub chunk_off: u32,
    pub len: u32,
    pub dest_off: u32,
}

/// Reconstruction directive of a degraded gather read: the request's
/// segments are the k surviving shards (tagged by `GatherSegment::shard`);
/// the NIC-side EC engine rebuilds the chunks named by `copy` and the
/// responder streams exactly those ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatherReconstruct {
    pub scheme: RsScheme,
    pub chunk_len: u32,
    pub copy: Vec<GatherCopy>,
}

/// Gather read header (GRH): the offloaded-read analogue of the RRH. One
/// validated request asks a storage NIC to collect several source ranges
/// (optionally reconstructing missing chunks on the NIC) and stream them
/// back as a single response flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatherReadHeader {
    /// Total bytes the response flow will carry.
    pub total_len: u32,
    pub segments: Vec<GatherSegment>,
    pub reconstruct: Option<GatherReconstruct>,
}

impl GatherReadHeader {
    pub fn wire_size(&self) -> u32 {
        let rec = self.reconstruct.as_ref().map_or(0, |r| {
            sizes::GRH_REC_FIXED + r.copy.len() as u32 * sizes::GATHER_COPY
        });
        sizes::GRH_FIXED + self.segments.len() as u32 * sizes::GATHER_SEG + rec
    }
}

/// Compute the children of `vrank` in a broadcast schedule over `n` nodes.
///
/// Ring: rank r forwards to r+1 (if any). PBT: rank r forwards to 2r+1 and
/// 2r+2 (if present). Rank 0 is the primary storage node (the one the client
/// writes to).
pub fn bcast_children(strategy: BcastStrategy, vrank: u8, n: usize) -> Vec<u8> {
    let r = vrank as usize;
    let mut out = Vec::with_capacity(2);
    match strategy {
        BcastStrategy::Ring => {
            if r + 1 < n {
                out.push((r + 1) as u8);
            }
        }
        BcastStrategy::Pbt => {
            for c in [2 * r + 1, 2 * r + 2] {
                if c < n {
                    out.push(c as u8);
                }
            }
        }
    }
    out
}

/// Depth of rank `r` in the broadcast tree (hops from the primary).
pub fn bcast_depth(strategy: BcastStrategy, vrank: u8) -> u32 {
    match strategy {
        BcastStrategy::Ring => vrank as u32,
        BcastStrategy::Pbt => {
            let mut d = 0;
            let mut r = vrank as usize;
            while r > 0 {
                r = (r - 1) / 2;
                d += 1;
            }
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrh_sizes_scale_with_coords() {
        let plain = WriteReqHeader {
            target_addr: 0,
            len: 0,
            resiliency: Resiliency::None,
        };
        assert_eq!(plain.wire_size(), sizes::WRH_FIXED);

        let repl = WriteReqHeader {
            target_addr: 0,
            len: 0,
            resiliency: Resiliency::Replicate {
                strategy: BcastStrategy::Ring,
                vrank: 0,
                coords: vec![ReplicaCoord { node: 1, addr: 0 }; 4],
            },
        };
        assert_eq!(
            repl.wire_size(),
            sizes::WRH_FIXED + sizes::WRH_REPL_FIXED + 4 * sizes::REPLICA_COORD
        );

        let ec = WriteReqHeader {
            target_addr: 0,
            len: 0,
            resiliency: Resiliency::ErasureCode(EcInfo {
                scheme: RsScheme::new(3, 2),
                role: EcRole::Data { chunk_idx: 0 },
                stripe: 9,
                parity_coords: vec![ReplicaCoord { node: 4, addr: 0 }; 2],
            }),
        };
        assert_eq!(
            ec.wire_size(),
            sizes::WRH_FIXED + sizes::WRH_EC_FIXED + 2 * sizes::REPLICA_COORD
        );
    }

    #[test]
    fn grh_fits_first_packet_at_max_segments() {
        // Worst case: MAX_GATHER_SEGS segments each needing a copy range.
        let grh = GatherReadHeader {
            total_len: 0,
            segments: vec![
                GatherSegment {
                    coord: ReplicaCoord { node: 0, addr: 0 },
                    len: 0,
                    dest_off: 0,
                    shard: 0,
                };
                MAX_GATHER_SEGS
            ],
            reconstruct: Some(GatherReconstruct {
                scheme: RsScheme::new(8, 4),
                chunk_len: 0,
                copy: vec![
                    GatherCopy {
                        chunk: 0,
                        chunk_off: 0,
                        len: 0,
                        dest_off: 0,
                    };
                    MAX_GATHER_SEGS
                ],
            }),
        };
        assert!(sizes::RDMA_HEADER + sizes::DFS_HEADER + grh.wire_size() < sizes::MTU);
    }

    #[test]
    fn ring_children_chain() {
        assert_eq!(bcast_children(BcastStrategy::Ring, 0, 4), vec![1]);
        assert_eq!(bcast_children(BcastStrategy::Ring, 2, 4), vec![3]);
        assert!(bcast_children(BcastStrategy::Ring, 3, 4).is_empty());
    }

    #[test]
    fn pbt_children_tree() {
        assert_eq!(bcast_children(BcastStrategy::Pbt, 0, 7), vec![1, 2]);
        assert_eq!(bcast_children(BcastStrategy::Pbt, 1, 7), vec![3, 4]);
        assert_eq!(bcast_children(BcastStrategy::Pbt, 2, 6), vec![5]);
        assert!(bcast_children(BcastStrategy::Pbt, 3, 7).is_empty());
    }

    #[test]
    fn every_rank_reached_exactly_once() {
        for n in 1..=16usize {
            for strategy in [BcastStrategy::Ring, BcastStrategy::Pbt] {
                let mut seen = vec![0u32; n];
                seen[0] = 1; // primary receives from the client
                for r in 0..n {
                    for c in bcast_children(strategy, r as u8, n) {
                        seen[c as usize] += 1;
                    }
                }
                assert!(seen.iter().all(|&s| s == 1), "{strategy:?} n={n}: {seen:?}");
            }
        }
    }

    #[test]
    fn depths() {
        assert_eq!(bcast_depth(BcastStrategy::Ring, 3), 3);
        assert_eq!(bcast_depth(BcastStrategy::Pbt, 0), 0);
        assert_eq!(bcast_depth(BcastStrategy::Pbt, 1), 1);
        assert_eq!(bcast_depth(BcastStrategy::Pbt, 2), 1);
        assert_eq!(bcast_depth(BcastStrategy::Pbt, 5), 2);
        assert_eq!(bcast_depth(BcastStrategy::Pbt, 6), 2);
    }

    #[test]
    fn pbt_depth_is_logarithmic() {
        // Max depth over k nodes should be ceil(log2(k+1)) - 1-ish; just
        // verify it is strictly smaller than ring depth for k >= 4.
        for k in 4..=8u8 {
            let ring_max = bcast_depth(BcastStrategy::Ring, k - 1);
            let pbt_max = (0..k).map(|r| bcast_depth(BcastStrategy::Pbt, r)).max();
            assert!(pbt_max.expect("nonempty") < ring_max);
        }
    }
}
