//! Network frames: everything that travels on the simulated wire.
//!
//! A *message* (e.g. one RDMA write) is a stream of frames sharing a
//! [`MsgId`]; sPIN handler scheduling and RDMA reassembly both key on it.
//! Frame layouts follow Fig 3 of the paper: the first packet of a request
//! carries the DFS header and the WRH/RRH, subsequent packets only the
//! transport header plus data.

use bytes::Bytes;
use nadfs_simnet::CreditGrant;

use crate::headers::{DfsHeader, GatherReadHeader, ReadReqHeader, ReplicaCoord, WriteReqHeader};
use crate::sizes;

/// Unique message identity: issuing node plus a per-node sequence number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MsgId {
    pub node: u32,
    pub seq: u64,
}

impl MsgId {
    pub fn new(node: u32, seq: u64) -> MsgId {
        MsgId { node, seq }
    }
}

/// Write completion status reported in ACK frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    Ok,
    AuthFailed,
    /// NIC descriptor memory exhausted; client should retry later (§III-B).
    Busy,
    /// Request malformed or addressed outside a registered region.
    Rejected,
}

/// One packet of an RDMA write message (raw, sPIN-processed, replication
/// forward, or EC intermediate parity — distinguished by the WRH contents).
#[derive(Clone, Debug)]
pub struct WritePkt {
    pub msg: MsgId,
    pub pkt_idx: u32,
    pub total_pkts: u32,
    /// Present on the first packet only.
    pub dfs: Option<DfsHeader>,
    /// Present on the first packet only.
    pub wrh: Option<WriteReqHeader>,
    /// Byte offset of `data` within the whole write payload.
    pub offset: u32,
    pub data: Bytes,
}

impl WritePkt {
    #[inline]
    pub fn is_first(&self) -> bool {
        self.pkt_idx == 0
    }
    #[inline]
    pub fn is_last(&self) -> bool {
        self.pkt_idx + 1 == self.total_pkts
    }
}

/// RDMA read request (single packet).
#[derive(Clone, Debug)]
pub struct ReadReqPkt {
    pub msg: MsgId,
    /// DFS header when the read is policy-checked; `None` for pure RDMA
    /// reads (e.g. the storage node fetching data from a client in the
    /// RPC+RDMA write protocol).
    pub dfs: Option<DfsHeader>,
    pub rrh: ReadReqHeader,
}

/// Offloaded gather read request (single packet): always policy-checked —
/// the storage NIC validates the capability once for the whole flow.
#[derive(Clone, Debug)]
pub struct GatherReqPkt {
    pub msg: MsgId,
    pub dfs: DfsHeader,
    pub grh: GatherReadHeader,
}

/// One packet of an RDMA read response.
#[derive(Clone, Debug)]
pub struct ReadRespPkt {
    /// Matches the originating request's `msg`.
    pub msg: MsgId,
    pub pkt_idx: u32,
    pub total_pkts: u32,
    pub offset: u32,
    pub data: Bytes,
}

/// RPC bodies carried by the first packet of a SEND message.
#[derive(Clone, Debug)]
pub enum RpcBody {
    /// RPC write: header now, data inline in this message (RPC protocol) or
    /// to be fetched with an RDMA read (RPC+RDMA protocol).
    WriteReq {
        dfs: DfsHeader,
        wrh: WriteReqHeader,
        /// True when the payload is inline in this SEND message.
        inline_data: bool,
        /// Client-side source address for RDMA-read fetch (RPC+RDMA).
        src_addr: u64,
        /// Offset of this chunk within the whole write (pipelined CPU
        /// forwarding splits writes into chunk-sized RPCs).
        chunk_off: u32,
        /// Total length of the whole write this chunk belongs to.
        full_len: u32,
    },
    ReadReq {
        dfs: DfsHeader,
        rrh: ReadReqHeader,
    },
    /// Control-plane metadata lookup (used by full-system examples).
    MetaLookupReq {
        file: u64,
    },
    MetaLookupResp {
        file: u64,
        ok: bool,
    },
}

impl RpcBody {
    /// Serialized body size for wire accounting.
    pub fn wire_size(&self) -> u32 {
        match self {
            RpcBody::WriteReq { wrh, .. } => DfsHeader::wire_size() + wrh.wire_size() + 17,
            RpcBody::ReadReq { .. } => DfsHeader::wire_size() + ReadReqHeader::wire_size(),
            RpcBody::MetaLookupReq { .. } => 8,
            RpcBody::MetaLookupResp { .. } => 9,
        }
    }
}

/// One packet of a two-sided SEND message (RPC transport).
#[derive(Clone, Debug)]
pub struct SendPkt {
    pub msg: MsgId,
    pub pkt_idx: u32,
    pub total_pkts: u32,
    /// Present on the first packet only.
    pub rpc: Option<RpcBody>,
    pub offset: u32,
    pub data: Bytes,
}

impl SendPkt {
    #[inline]
    pub fn is_first(&self) -> bool {
        self.pkt_idx == 0
    }
    #[inline]
    pub fn is_last(&self) -> bool {
        self.pkt_idx + 1 == self.total_pkts
    }
}

/// Acknowledgement (or negative acknowledgement) frame.
#[derive(Clone, Copy, Debug)]
pub struct AckPkt {
    /// The message being acknowledged.
    pub msg: MsgId,
    /// DFS-level request id when the ack closes a DFS request.
    pub greq_id: Option<u64>,
    pub status: Status,
    /// Piggybacked recv-credit return to the ack's destination (two u16
    /// counts riding the AETH reserved/MSN bytes already charged in
    /// [`sizes::ACK_FRAME`]). Stamped by the sending NIC's credit layer;
    /// construction sites leave it zero.
    pub credit: CreditGrant,
}

/// HyperLoop configuration: the client remotely writes pre-posted WQE
/// updates into a storage NIC (§V, RDMA-HyperLoop; Kim et al. 2018).
/// One frame configures the forwarding chain for one write on one node.
#[derive(Clone, Debug)]
pub struct HlConfigPkt {
    pub msg: MsgId,
    pub greq_id: u64,
    /// Where forwarded data lands locally.
    pub local_addr: u64,
    pub total_len: u32,
    /// Forwarding granularity (chunk size) of the pre-posted WRITE WQEs.
    pub chunk: u32,
    /// Next hop in the ring, if any.
    pub next: Option<ReplicaCoord>,
    /// Whether this node must acknowledge the client when the whole write
    /// has landed (HyperLoop completes at the ring tail).
    pub ack_client: bool,
    /// WQE update fragment index (large writes need several MTU-sized
    /// configuration writes; the chain arms on the last fragment).
    pub frag: u16,
    pub total_frags: u16,
}

impl HlConfigPkt {
    pub fn num_chunks(&self) -> u32 {
        if self.total_len == 0 {
            1
        } else {
            self.total_len.div_ceil(self.chunk.max(1))
        }
    }

    /// Total configuration bytes: 64 B of group/doorbell state plus 16 B
    /// per WQE update.
    pub fn config_bytes(&self) -> u32 {
        64 + 16 * self.num_chunks()
    }

    /// Fragments needed to carry the configuration within the MTU.
    pub fn frags_needed(&self) -> u16 {
        let cap = sizes::MTU - sizes::RDMA_HEADER;
        self.config_bytes().div_ceil(cap).max(1) as u16
    }

    /// Bytes carried by fragment `frag`.
    pub fn frag_bytes(&self) -> u32 {
        let cap = sizes::MTU - sizes::RDMA_HEADER;
        let total = self.config_bytes();
        let start = self.frag as u32 * cap;
        (total - start.min(total)).min(cap)
    }

    pub fn is_last_frag(&self) -> bool {
        self.frag + 1 == self.total_frags
    }
}

/// Everything that can appear on the wire.
#[derive(Clone, Debug)]
pub enum Frame {
    Write(WritePkt),
    ReadReq(ReadReqPkt),
    GatherReq(GatherReqPkt),
    ReadResp(ReadRespPkt),
    Send(SendPkt),
    Ack(AckPkt),
    HlConfig(HlConfigPkt),
}

impl Frame {
    /// Message id shared by all packets of the same message.
    pub fn msg(&self) -> MsgId {
        match self {
            Frame::Write(p) => p.msg,
            Frame::ReadReq(p) => p.msg,
            Frame::GatherReq(p) => p.msg,
            Frame::ReadResp(p) => p.msg,
            Frame::Send(p) => p.msg,
            Frame::Ack(p) => p.msg,
            Frame::HlConfig(p) => p.msg,
        }
    }
}

impl nadfs_simnet::Payload for Frame {
    fn wire_bytes(&self) -> u32 {
        let sz = match self {
            Frame::Write(p) => {
                sizes::RDMA_HEADER
                    + p.dfs.map_or(0, |_| DfsHeader::wire_size())
                    + p.wrh.as_ref().map_or(0, |w| w.wire_size())
                    + p.data.len() as u32
            }
            Frame::ReadReq(p) => {
                sizes::RDMA_HEADER
                    + p.dfs.map_or(0, |_| DfsHeader::wire_size())
                    + ReadReqHeader::wire_size()
            }
            Frame::GatherReq(p) => sizes::RDMA_HEADER + DfsHeader::wire_size() + p.grh.wire_size(),
            Frame::ReadResp(p) => sizes::RDMA_HEADER + p.data.len() as u32,
            Frame::Send(p) => {
                sizes::RDMA_HEADER
                    + sizes::RPC_HEADER
                    + p.rpc.as_ref().map_or(0, |b| b.wire_size())
                    + p.data.len() as u32
            }
            Frame::Ack(_) => sizes::ACK_FRAME,
            Frame::HlConfig(p) => sizes::RDMA_HEADER + p.frag_bytes(),
        };
        debug_assert!(sz <= sizes::MTU, "frame exceeds MTU: {sz} ({self:?})");
        sz
    }
}

/// Split a payload of `total` bytes into per-packet `(offset, len)` ranges,
/// where the first packet can carry `first_cap` bytes and subsequent packets
/// `rest_cap` bytes. A zero-length payload still produces one (empty) packet
/// so every message has a header packet.
pub fn split_payload(total: u32, first_cap: u32, rest_cap: u32) -> Vec<(u32, u32)> {
    assert!(rest_cap > 0, "rest capacity must be positive");
    let mut out = Vec::new();
    let first = total.min(first_cap);
    out.push((0, first));
    let mut off = first;
    while off < total {
        let len = (total - off).min(rest_cap);
        out.push((off, len));
        off += len;
    }
    out
}

/// Per-packet payload capacity of a write message given its first-packet
/// headers.
pub fn write_payload_caps(wrh: &WriteReqHeader) -> (u32, u32) {
    let first = sizes::MTU - sizes::RDMA_HEADER - DfsHeader::wire_size() - wrh.wire_size();
    (first, sizes::max_payload_plain())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::{Capability, Rights};
    use crate::headers::{DfsOp, Resiliency};
    use crate::siphash::MacKey;
    use nadfs_simnet::Payload;

    fn dfs_header() -> DfsHeader {
        DfsHeader {
            tenant: 0,
            greq_id: 1,
            op: DfsOp::Write,
            client: 2,
            capability: Capability::issue(&MacKey::from_seed(0), 2, 3, Rights::RW, 100, 0),
        }
    }

    fn wrh() -> WriteReqHeader {
        WriteReqHeader {
            target_addr: 0x1000,
            len: 4096,
            resiliency: Resiliency::None,
        }
    }

    #[test]
    fn first_packet_carries_headers_in_size() {
        let first = Frame::Write(WritePkt {
            msg: MsgId::new(0, 0),
            pkt_idx: 0,
            total_pkts: 2,
            dfs: Some(dfs_header()),
            wrh: Some(wrh()),
            offset: 0,
            data: Bytes::from(vec![0u8; 100]),
        });
        let mid = Frame::Write(WritePkt {
            msg: MsgId::new(0, 0),
            pkt_idx: 1,
            total_pkts: 2,
            dfs: None,
            wrh: None,
            offset: 100,
            data: Bytes::from(vec![0u8; 100]),
        });
        assert_eq!(
            first.wire_bytes(),
            sizes::RDMA_HEADER + sizes::DFS_HEADER + sizes::WRH_FIXED + 100
        );
        assert_eq!(mid.wire_bytes(), sizes::RDMA_HEADER + 100);
    }

    #[test]
    fn split_payload_covers_everything_once() {
        let parts = split_payload(10_000, 1900, 1978);
        assert_eq!(parts[0], (0, 1900));
        let total: u32 = parts.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 10_000);
        // Contiguity.
        let mut expect = 0;
        for &(off, len) in &parts {
            assert_eq!(off, expect);
            expect = off + len;
        }
    }

    #[test]
    fn split_payload_zero_length_has_header_packet() {
        assert_eq!(split_payload(0, 1900, 1978), vec![(0, 0)]);
    }

    #[test]
    fn split_payload_exact_fit() {
        let parts = split_payload(1900 + 1978 * 2, 1900, 1978);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2], (1900 + 1978, 1978));
    }

    #[test]
    fn packets_never_exceed_mtu() {
        let w = wrh();
        let (first, rest) = write_payload_caps(&w);
        for &(off, len) in &split_payload(1 << 20, first, rest) {
            let pkt = Frame::Write(WritePkt {
                msg: MsgId::new(0, 0),
                pkt_idx: if off == 0 { 0 } else { 1 },
                total_pkts: 2,
                dfs: (off == 0).then(dfs_header),
                wrh: (off == 0).then(|| w.clone()),
                offset: off,
                data: Bytes::from(vec![0u8; len as usize]),
            });
            assert!(pkt.wire_bytes() <= sizes::MTU);
        }
    }

    #[test]
    fn hyperloop_config_size_scales_with_chunks() {
        let mk = |total, chunk| HlConfigPkt {
            msg: MsgId::new(0, 0),
            greq_id: 0,
            local_addr: 0,
            total_len: total,
            chunk,
            next: None,
            ack_client: true,
            frag: 0,
            total_frags: 1,
        };
        assert!(mk(1 << 20, 64 << 10).config_bytes() > mk(1 << 20, 256 << 10).config_bytes());
        assert_eq!(
            Frame::HlConfig(mk(0, 1024)).wire_bytes(),
            sizes::RDMA_HEADER + 64 + 16
        );
        // Many chunks: multiple MTU-bounded fragments, none oversized.
        let big = mk(1 << 20, 8 << 10);
        assert!(big.frags_needed() > 1);
        for frag in 0..big.frags_needed() {
            let mut f = big.clone();
            f.frag = frag;
            f.total_frags = big.frags_needed();
            assert!(Frame::HlConfig(f).wire_bytes() <= sizes::MTU);
        }
    }

    #[test]
    fn ack_is_fixed_size() {
        let a = Frame::Ack(AckPkt {
            credit: CreditGrant::ZERO,
            msg: MsgId::new(1, 2),
            greq_id: Some(7),
            status: Status::Ok,
        });
        assert_eq!(a.wire_bytes(), sizes::ACK_FRAME);
    }
}
