//! On-wire size constants.
//!
//! The paper simulates a RoCE-style network with a 2048 B MTU (§III-D) and
//! states that DFS+request headers always fit the first packet (§III-A).
//! Sizes below follow RoCEv2 framing: Ethernet(14) + IPv4(20) + UDP(8) +
//! BTH(12) + RETH(16) = 70 B for a first/only RDMA WRITE packet; we charge
//! the same 70 B on every packet of a message (middle packets lack RETH but
//! carry PSN bookkeeping; the 16 B difference is < 1% of the MTU and keeping
//! it uniform simplifies reasoning about goodput).

/// Network maximum transmission unit, bytes (paper: 2048 B).
pub const MTU: u32 = 2048;

/// Transport (RDMA/RoCE) header bytes charged per packet.
pub const RDMA_HEADER: u32 = 70;

/// Acknowledgement / NACK frame total wire size (AETH-style small frame).
pub const ACK_FRAME: u32 = 74;

/// Capability: client(4) file(8) rights(1) expiry(8) nonce(8) mac(8) = 37 B.
pub const CAPABILITY: u32 = 37;

/// Generic DFS header (§III-A): greq_id(8) op(1) client(4) + capability.
pub const DFS_HEADER: u32 = 13 + CAPABILITY;

/// Read request header: addr(8) len(4).
pub const RRH: u32 = 12;

/// Write request header, fixed part: target_addr(8) len(4) resiliency tag(1).
pub const WRH_FIXED: u32 = 13;

/// Per replica coordinate: node(4) + addr(8) (§V-A "replica coordinates").
pub const REPLICA_COORD: u32 = 12;

/// Replication extra fields: strategy(1) vrank(1) nreplicas(1).
pub const WRH_REPL_FIXED: u32 = 3;

/// EC extra fields: k(1) m(1) role(1) role-args(10) stripe(8) ncoords(1).
pub const WRH_EC_FIXED: u32 = 22;

/// RPC header: rpc_id(8) kind(1) body_len(4).
pub const RPC_HEADER: u32 = 13;

/// Gather read header, fixed part: total_len(4) nsegs(1) has_reconstruct(1).
pub const GRH_FIXED: u32 = 6;

/// Per gather segment: replica coord(12) len(4) dest_off(4) shard(1).
pub const GATHER_SEG: u32 = REPLICA_COORD + 9;

/// Reconstruction directive, fixed part: k(1) m(1) chunk_len(4) ncopies(1).
pub const GRH_REC_FIXED: u32 = 7;

/// Per reconstruction copy range: chunk(1) chunk_off(4) len(4) dest_off(4).
pub const GATHER_COPY: u32 = 13;

/// Maximum data bytes in a packet that carries only the RDMA header.
pub const fn max_payload_plain() -> u32 {
    MTU - RDMA_HEADER
}

/// In-NIC write descriptor size (§III-B: "each entry is a write descriptor
/// that takes 77 bytes").
pub const WRITE_DESCRIPTOR: u32 = 77;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fits_single_packet_for_max_replication() {
        // Paper assumption (§III-A): DFS + WRH headers fit one MTU even for
        // the largest configurations evaluated (k = 8 replicas).
        let wrh = WRH_FIXED + WRH_REPL_FIXED + 8 * REPLICA_COORD;
        assert!(RDMA_HEADER + DFS_HEADER + wrh < MTU);
    }

    #[test]
    fn plain_payload_capacity() {
        assert_eq!(max_payload_plain(), 1978);
    }
}
