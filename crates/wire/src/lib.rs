//! # nadfs-wire
//!
//! Wire formats for the network-accelerated DFS: transport/DFS headers and
//! packet layouts following Fig 3 of the paper, capability tickets with a
//! real keyed MAC (SipHash-2-4, implemented in [`siphash`]), byte codecs
//! pinning the layouts, and the [`frame::Frame`] type every simulated packet
//! carries.

pub mod capability;
pub mod codec;
pub mod frame;
pub mod headers;
pub mod siphash;
pub mod sizes;

pub use capability::{AuthError, Capability, Rights};
pub use frame::{
    split_payload, write_payload_caps, AckPkt, Frame, GatherReqPkt, HlConfigPkt, MsgId, ReadReqPkt,
    ReadRespPkt, RpcBody, SendPkt, Status, WritePkt,
};
pub use headers::{
    bcast_children, bcast_depth, BcastStrategy, DfsHeader, DfsOp, EcInfo, EcRole, GatherCopy,
    GatherReadHeader, GatherReconstruct, GatherSegment, ReadReqHeader, ReplicaCoord, Resiliency,
    RsScheme, WriteReqHeader, MAX_GATHER_SEGS,
};
pub use nadfs_simnet::CreditGrant;
pub use siphash::{payload_checksum, siphash24, siphash24_words, MacKey};
