//! Byte-level codecs for the DFS headers.
//!
//! The simulator mostly moves typed frames around, but the headers are also
//! fully serializable: the encoded lengths are the authoritative wire sizes
//! (asserted in tests against [`crate::sizes`]), and encode/decode
//! roundtrips pin the layout.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::capability::{Capability, Rights};
use crate::headers::{
    BcastStrategy, DfsHeader, DfsOp, EcInfo, EcRole, ReadReqHeader, ReplicaCoord, Resiliency,
    RsScheme, WriteReqHeader,
};

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    Truncated,
    BadTag(u8),
}

type Result<T> = std::result::Result<T, CodecError>;

fn need(buf: &impl Buf, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

pub fn encode_capability(c: &Capability, out: &mut BytesMut) {
    out.put_u32_le(c.client);
    out.put_u64_le(c.file);
    out.put_u8(c.rights.0);
    out.put_u64_le(c.expires_at_ns);
    out.put_u64_le(c.nonce);
    out.put_u64_le(c.mac);
}

pub fn decode_capability(buf: &mut Bytes) -> Result<Capability> {
    need(buf, 37)?;
    Ok(Capability {
        client: buf.get_u32_le(),
        file: buf.get_u64_le(),
        rights: Rights(buf.get_u8()),
        expires_at_ns: buf.get_u64_le(),
        nonce: buf.get_u64_le(),
        mac: buf.get_u64_le(),
    })
}

pub fn encode_dfs_header(h: &DfsHeader, out: &mut BytesMut) {
    out.put_u64_le(h.greq_id);
    out.put_u8(match h.op {
        DfsOp::Write => 0,
        DfsOp::Read => 1,
    });
    // The tenant id rides the upper half of the client word: node ids fit
    // 16 bits, so the packing keeps the header at its Fig-3 wire size.
    out.put_u32_le((h.tenant as u32) << 16 | (h.client & 0xFFFF));
    encode_capability(&h.capability, out);
}

pub fn decode_dfs_header(buf: &mut Bytes) -> Result<DfsHeader> {
    need(buf, 13)?;
    let greq_id = buf.get_u64_le();
    let op = match buf.get_u8() {
        0 => DfsOp::Write,
        1 => DfsOp::Read,
        t => return Err(CodecError::BadTag(t)),
    };
    let word = buf.get_u32_le();
    let capability = decode_capability(buf)?;
    Ok(DfsHeader {
        greq_id,
        op,
        client: word & 0xFFFF,
        tenant: (word >> 16) as u16,
        capability,
    })
}

fn encode_coord(c: &ReplicaCoord, out: &mut BytesMut) {
    out.put_u32_le(c.node);
    out.put_u64_le(c.addr);
}

fn decode_coord(buf: &mut Bytes) -> Result<ReplicaCoord> {
    need(buf, 12)?;
    Ok(ReplicaCoord {
        node: buf.get_u32_le(),
        addr: buf.get_u64_le(),
    })
}

pub fn encode_wrh(h: &WriteReqHeader, out: &mut BytesMut) {
    out.put_u64_le(h.target_addr);
    out.put_u32_le(h.len);
    match &h.resiliency {
        Resiliency::None => out.put_u8(0),
        Resiliency::Replicate {
            strategy,
            vrank,
            coords,
        } => {
            out.put_u8(1);
            out.put_u8(match strategy {
                BcastStrategy::Ring => 0,
                BcastStrategy::Pbt => 1,
            });
            out.put_u8(*vrank);
            out.put_u8(coords.len() as u8);
            for c in coords {
                encode_coord(c, out);
            }
        }
        Resiliency::ErasureCode(info) => {
            out.put_u8(2);
            out.put_u8(info.scheme.k);
            out.put_u8(info.scheme.m);
            match info.role {
                EcRole::Data { chunk_idx } => {
                    out.put_u8(0);
                    out.put_u8(chunk_idx);
                    out.put_slice(&[0u8; 9]);
                }
                EcRole::Parity {
                    parity_idx,
                    src_chunk,
                } => {
                    out.put_u8(1);
                    out.put_u8(parity_idx);
                    out.put_u8(src_chunk);
                    out.put_slice(&[0u8; 8]);
                }
            }
            out.put_u64_le(info.stripe);
            out.put_u8(info.parity_coords.len() as u8);
            for c in &info.parity_coords {
                encode_coord(c, out);
            }
        }
    }
}

pub fn decode_wrh(buf: &mut Bytes) -> Result<WriteReqHeader> {
    need(buf, 13)?;
    let target_addr = buf.get_u64_le();
    let len = buf.get_u32_le();
    let resiliency = match buf.get_u8() {
        0 => Resiliency::None,
        1 => {
            need(buf, 3)?;
            let strategy = match buf.get_u8() {
                0 => BcastStrategy::Ring,
                1 => BcastStrategy::Pbt,
                t => return Err(CodecError::BadTag(t)),
            };
            let vrank = buf.get_u8();
            let n = buf.get_u8() as usize;
            let mut coords = Vec::with_capacity(n);
            for _ in 0..n {
                coords.push(decode_coord(buf)?);
            }
            Resiliency::Replicate {
                strategy,
                vrank,
                coords,
            }
        }
        2 => {
            need(buf, 21)?;
            let k = buf.get_u8();
            let m = buf.get_u8();
            let role = match buf.get_u8() {
                0 => {
                    let chunk_idx = buf.get_u8();
                    buf.advance(9);
                    EcRole::Data { chunk_idx }
                }
                1 => {
                    let parity_idx = buf.get_u8();
                    let src_chunk = buf.get_u8();
                    buf.advance(8);
                    EcRole::Parity {
                        parity_idx,
                        src_chunk,
                    }
                }
                t => return Err(CodecError::BadTag(t)),
            };
            let stripe = buf.get_u64_le();
            let n = buf.get_u8() as usize;
            let mut parity_coords = Vec::with_capacity(n);
            for _ in 0..n {
                parity_coords.push(decode_coord(buf)?);
            }
            Resiliency::ErasureCode(EcInfo {
                scheme: RsScheme::new(k, m),
                role,
                stripe,
                parity_coords,
            })
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(WriteReqHeader {
        target_addr,
        len,
        resiliency,
    })
}

pub fn encode_rrh(h: &ReadReqHeader, out: &mut BytesMut) {
    out.put_u64_le(h.addr);
    out.put_u32_le(h.len);
}

pub fn decode_rrh(buf: &mut Bytes) -> Result<ReadReqHeader> {
    need(buf, 12)?;
    Ok(ReadReqHeader {
        addr: buf.get_u64_le(),
        len: buf.get_u32_le(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::siphash::MacKey;
    use crate::sizes;

    fn cap() -> Capability {
        Capability::issue(&MacKey::from_seed(1), 9, 77, Rights::RW, 123_456, 5)
    }

    #[test]
    fn capability_roundtrip_and_size() {
        let c = cap();
        let mut b = BytesMut::new();
        encode_capability(&c, &mut b);
        assert_eq!(b.len() as u32, sizes::CAPABILITY);
        let mut r = b.freeze();
        assert_eq!(decode_capability(&mut r).expect("decode"), c);
        assert!(r.is_empty());
    }

    #[test]
    fn dfs_header_roundtrip_and_size() {
        let h = DfsHeader {
            tenant: 0,
            greq_id: 0xAABB,
            op: DfsOp::Read,
            client: 3,
            capability: cap(),
        };
        let mut b = BytesMut::new();
        encode_dfs_header(&h, &mut b);
        assert_eq!(b.len() as u32, sizes::DFS_HEADER);
        let mut r = b.freeze();
        assert_eq!(decode_dfs_header(&mut r).expect("decode"), h);
    }

    #[test]
    fn wrh_roundtrip_all_variants() {
        let variants = vec![
            WriteReqHeader {
                target_addr: 1,
                len: 2,
                resiliency: Resiliency::None,
            },
            WriteReqHeader {
                target_addr: 0xF00,
                len: 4096,
                resiliency: Resiliency::Replicate {
                    strategy: BcastStrategy::Pbt,
                    vrank: 2,
                    coords: vec![
                        ReplicaCoord { node: 1, addr: 16 },
                        ReplicaCoord { node: 2, addr: 32 },
                        ReplicaCoord { node: 3, addr: 64 },
                    ],
                },
            },
            WriteReqHeader {
                target_addr: 8,
                len: 1 << 20,
                resiliency: Resiliency::ErasureCode(EcInfo {
                    scheme: RsScheme::new(6, 3),
                    role: EcRole::Parity {
                        parity_idx: 1,
                        src_chunk: 4,
                    },
                    stripe: 0xDEAD,
                    parity_coords: vec![],
                }),
            },
            WriteReqHeader {
                target_addr: 8,
                len: 12_288,
                resiliency: Resiliency::ErasureCode(EcInfo {
                    scheme: RsScheme::new(3, 2),
                    role: EcRole::Data { chunk_idx: 2 },
                    stripe: 7,
                    parity_coords: vec![
                        ReplicaCoord { node: 4, addr: 0 },
                        ReplicaCoord { node: 5, addr: 0 },
                    ],
                }),
            },
        ];
        for h in variants {
            let mut b = BytesMut::new();
            encode_wrh(&h, &mut b);
            assert_eq!(b.len() as u32, h.wire_size(), "size for {h:?}");
            let mut r = b.freeze();
            assert_eq!(decode_wrh(&mut r).expect("decode"), h);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn rrh_roundtrip_and_size() {
        let h = ReadReqHeader { addr: 77, len: 88 };
        let mut b = BytesMut::new();
        encode_rrh(&h, &mut b);
        assert_eq!(b.len() as u32, sizes::RRH);
        let mut r = b.freeze();
        assert_eq!(decode_rrh(&mut r).expect("decode"), h);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let h = DfsHeader {
            tenant: 0,
            greq_id: 1,
            op: DfsOp::Write,
            client: 1,
            capability: cap(),
        };
        let mut b = BytesMut::new();
        encode_dfs_header(&h, &mut b);
        let full = b.freeze();
        for cut in 0..full.len() {
            let mut part = full.slice(..cut);
            assert_eq!(
                decode_dfs_header(&mut part),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_tags_rejected() {
        let mut b = BytesMut::new();
        b.put_u64_le(0);
        b.put_u32_le(0);
        b.put_u8(9); // bogus resiliency tag
        assert_eq!(decode_wrh(&mut b.freeze()), Err(CodecError::BadTag(9)));
    }
}
