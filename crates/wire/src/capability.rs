//! Capabilities: the authentication ticket a client obtains from the
//! metadata/management service and presents with every request (§IV).
//!
//! Threat model (the one the paper assumes): clients are *not* trusted, the
//! network *is*. The capability describes what the holder may do and is
//! signed with a key shared among DFS services; storage-node handlers verify
//! the signature and check that the requested operation is allowed.

use crate::siphash::{siphash24_words, MacKey};

/// Access rights bitmap.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Rights(pub u8);

impl Rights {
    pub const READ: Rights = Rights(0b01);
    pub const WRITE: Rights = Rights(0b10);
    pub const RW: Rights = Rights(0b11);

    #[inline]
    pub fn allows(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    #[inline]
    pub fn union(self, other: Rights) -> Rights {
        Rights(self.0 | other.0)
    }
}

/// A signed capability descriptor (37 B on the wire, see [`crate::sizes`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Capability {
    pub client: u32,
    pub file: u64,
    pub rights: Rights,
    /// Absolute simulated-time expiry in nanoseconds.
    pub expires_at_ns: u64,
    /// Freshness nonce chosen by the issuer.
    pub nonce: u64,
    pub mac: u64,
}

impl Capability {
    fn mac_input(&self) -> [u64; 5] {
        [
            self.client as u64,
            self.file,
            self.rights.0 as u64,
            self.expires_at_ns,
            self.nonce,
        ]
    }

    /// Issue a capability signed under `key`.
    pub fn issue(
        key: &MacKey,
        client: u32,
        file: u64,
        rights: Rights,
        expires_at_ns: u64,
        nonce: u64,
    ) -> Capability {
        let mut cap = Capability {
            client,
            file,
            rights,
            expires_at_ns,
            nonce,
            mac: 0,
        };
        cap.mac = siphash24_words(key, &cap.mac_input());
        cap
    }

    /// Verify signature, expiry, and that `rights` are granted.
    pub fn verify(&self, key: &MacKey, now_ns: u64, needed: Rights) -> Result<(), AuthError> {
        if siphash24_words(key, &self.mac_input()) != self.mac {
            return Err(AuthError::BadSignature);
        }
        if now_ns >= self.expires_at_ns {
            return Err(AuthError::Expired);
        }
        if !self.rights.allows(needed) {
            return Err(AuthError::InsufficientRights);
        }
        Ok(())
    }

    /// Verify against a specific file id as well.
    pub fn verify_for_file(
        &self,
        key: &MacKey,
        now_ns: u64,
        needed: Rights,
        file: u64,
    ) -> Result<(), AuthError> {
        self.verify(key, now_ns, needed)?;
        if self.file != file {
            return Err(AuthError::WrongFile);
        }
        Ok(())
    }
}

/// Reasons a request is rejected by the authentication policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthError {
    BadSignature,
    Expired,
    InsufficientRights,
    WrongFile,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AuthError::BadSignature => "bad capability signature",
            AuthError::Expired => "capability expired",
            AuthError::InsufficientRights => "operation not permitted by capability",
            AuthError::WrongFile => "capability issued for a different file",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MacKey {
        MacKey::from_seed(0xDEAD)
    }

    #[test]
    fn issue_and_verify_roundtrip() {
        let cap = Capability::issue(&key(), 7, 42, Rights::RW, 1_000_000, 99);
        assert!(cap.verify(&key(), 500_000, Rights::WRITE).is_ok());
        assert!(cap.verify_for_file(&key(), 0, Rights::READ, 42).is_ok());
    }

    #[test]
    fn tampered_fields_fail_signature() {
        let cap = Capability::issue(&key(), 7, 42, Rights::READ, 1_000_000, 99);
        let mut evil = cap;
        evil.rights = Rights::RW; // privilege escalation attempt
        assert_eq!(
            evil.verify(&key(), 0, Rights::WRITE),
            Err(AuthError::BadSignature)
        );
        let mut other_file = cap;
        other_file.file = 43;
        assert_eq!(
            other_file.verify(&key(), 0, Rights::READ),
            Err(AuthError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let cap = Capability::issue(&key(), 1, 1, Rights::READ, 10, 0);
        assert_eq!(
            cap.verify(&MacKey::from_seed(1), 0, Rights::READ),
            Err(AuthError::BadSignature)
        );
    }

    #[test]
    fn expiry_enforced() {
        let cap = Capability::issue(&key(), 1, 1, Rights::READ, 10, 0);
        assert_eq!(
            cap.verify(&key(), 10, Rights::READ),
            Err(AuthError::Expired)
        );
        assert!(cap.verify(&key(), 9, Rights::READ).is_ok());
    }

    #[test]
    fn rights_enforced() {
        let cap = Capability::issue(&key(), 1, 1, Rights::READ, 10, 0);
        assert_eq!(
            cap.verify(&key(), 0, Rights::WRITE),
            Err(AuthError::InsufficientRights)
        );
        let rw = Capability::issue(&key(), 1, 1, Rights::RW, 10, 0);
        assert!(rw.verify(&key(), 0, Rights::RW).is_ok());
    }

    #[test]
    fn wrong_file_detected() {
        let cap = Capability::issue(&key(), 1, 5, Rights::RW, 10, 0);
        assert_eq!(
            cap.verify_for_file(&key(), 0, Rights::READ, 6),
            Err(AuthError::WrongFile)
        );
    }

    #[test]
    fn rights_bit_algebra() {
        assert!(Rights::RW.allows(Rights::READ));
        assert!(Rights::RW.allows(Rights::WRITE));
        assert!(!Rights::READ.allows(Rights::WRITE));
        assert_eq!(Rights::READ.union(Rights::WRITE), Rights::RW);
    }
}
