//! SipHash-2-4, implemented from scratch (Aumasson & Bernstein, 2012).
//!
//! Used as the keyed MAC for capability signing (§IV: "the capability …
//! is signed with a key shared among DFS services"). A 64-bit SipHash tag is
//! not a production-grade MAC; it stands in for one here because the
//! reproduction needs *functional* authentication (tamper ⇒ reject) and a
//! realistic per-byte verification cost, not cryptographic strength. The
//! allowed dependency set has no crypto crate, so the primitive lives here,
//! validated against the reference test vectors from the SipHash paper.

/// 128-bit MAC key shared among DFS services.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MacKey(pub [u8; 16]);

impl MacKey {
    /// Derive a deterministic key from a seed (test/demo convenience).
    pub fn from_seed(seed: u64) -> MacKey {
        let mut k = [0u8; 16];
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        for chunk in k.chunks_mut(8) {
            // splitmix64 steps
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        MacKey(k)
    }
}

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of `data` under `key`.
pub fn siphash24(key: &MacKey, data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key.0[0..8].try_into().expect("key half"));
    let k1 = u64::from_le_bytes(key.0[8..16].try_into().expect("key half"));
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }

    let rem = chunks.remainder();
    let mut last = (data.len() as u64) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;

    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Fixed (non-secret) key for payload checksums: integrity tagging of
/// read/write payloads in completion records, not authentication.
const CHECKSUM_KEY: MacKey = MacKey([
    0x6e, 0x61, 0x64, 0x66, 0x73, 0x2d, 0x63, 0x6b, 0x73, 0x75, 0x6d, 0x2d, 0x6b, 0x65, 0x79, 0x31,
]);

/// Checksum of a request/response payload, carried in completion records
/// so end-to-end tests can compare read-back bytes against written bytes
/// without hauling both buffers around.
pub fn payload_checksum(data: &[u8]) -> u64 {
    siphash24(&CHECKSUM_KEY, data)
}

/// Streaming-friendly MAC over a sequence of u64 words (used for signing
/// fixed-layout structs without serializing them first).
pub fn siphash24_words(key: &MacKey, words: &[u64]) -> u64 {
    let mut buf = Vec::with_capacity(words.len() * 8);
    for w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    siphash24(key, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper (Appendix A): key =
    /// 00 01 .. 0f, messages = prefixes of 00 01 02 ..
    const VECTORS: [u64; 16] = [
        0x726fdb47dd0e0e31,
        0x74f839c593dc67fd,
        0x0d6c8009d9a94f5a,
        0x85676696d7fb7e2d,
        0xcf2794e0277187b7,
        0x18765564cd99a68d,
        0xcbc9466e58fee3ce,
        0xab0200f58b01d137,
        0x93f5f5799a932462,
        0x9e0082df0ba9e4b0,
        0x7a5dbbc594ddb9f3,
        0xf4b32f46226bada7,
        0x751e8fbc860ee5fb,
        0x14ea5627c0843d90,
        0xf723ca908e7af2ee,
        0xa129ca6149be45e5,
    ];

    #[test]
    fn official_test_vectors() {
        let mut key = [0u8; 16];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let key = MacKey(key);
        let msg: Vec<u8> = (0..16).map(|i| i as u8).collect();
        for (len, expect) in VECTORS.iter().enumerate() {
            assert_eq!(siphash24(&key, &msg[..len]), *expect, "vector length {len}");
        }
    }

    #[test]
    fn different_keys_different_tags() {
        let a = MacKey::from_seed(1);
        let b = MacKey::from_seed(2);
        assert_ne!(a, b);
        assert_ne!(siphash24(&a, b"hello"), siphash24(&b, b"hello"));
    }

    #[test]
    fn word_mac_matches_byte_mac() {
        let k = MacKey::from_seed(7);
        let words = [1u64, 2, 3];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(siphash24_words(&k, &words), siphash24(&k, &bytes));
    }

    #[test]
    fn from_seed_is_deterministic() {
        assert_eq!(MacKey::from_seed(42), MacKey::from_seed(42));
    }
}
