//! One function per table/figure of the paper's evaluation.
//!
//! Every function runs the corresponding experiment and renders a table
//! whose rows include the paper's reference values (where the paper prints
//! them), so the paper-vs-measured comparison is immediate. Absolute
//! microseconds are not expected to match a different testbed; the *shape*
//! (who wins, crossovers, asymptotic bandwidths) is the reproduction
//! target — see EXPERIMENTS.md.

use nadfs_core::{
    analysis, ec_encode_latency_us, ec_encode_throughput_gbit, handler_report,
    pipeline_breakdown_ns, storage_goodput_gbit, write_latency_best_chunk, write_latency_us,
    CostModel, FilePolicy, ReplStrategy, WriteProtocol,
};
use nadfs_simnet::Bandwidth;
use nadfs_wire::{BcastStrategy, RsScheme};

use crate::report::{f, sz, Table};

/// Write sizes swept by the latency figures (1 KiB – 1 MiB, log scale).
pub const SIZES: [u32; 11] = [
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
];

/// Reduced sweep for the heavier multi-node figures.
pub const SIZES_COARSE: [u32; 6] = [1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];

/// Fig 4: worst-case NIC memory vs number of writes and write sizes.
pub fn fig04() -> String {
    let mut t = Table::new(
        "Fig 4 — NIC descriptor memory vs concurrent writes",
        &[
            "#writes",
            "4KiB (KiB)",
            "64KiB (KiB)",
            "1MiB (KiB)",
            "descr-only (KiB)",
        ],
    );
    for n in [1u64, 10, 50, 100, 250, 500, 750, 1000] {
        t.row(vec![
            n.to_string(),
            f(analysis::worst_case_memory_bytes(n, 4 << 10) as f64 / 1024.0),
            f(analysis::worst_case_memory_bytes(n, 64 << 10) as f64 / 1024.0),
            f(analysis::worst_case_memory_bytes(n, 1 << 20) as f64 / 1024.0),
            f(analysis::descriptor_memory_bytes(n) as f64 / 1024.0),
        ]);
    }
    t.note(format!(
        "budget line: {} KiB (6 MiB); descriptor-only capacity = {} concurrent writes (paper: ~82 K)",
        analysis::DESCRIPTOR_BUDGET_BYTES / 1024,
        analysis::max_concurrent_writes()
    ));
    t.note("size-dependent columns add per-packet bookkeeping state (see EXPERIMENTS.md interpretation note)");
    t.render()
}

/// Fig 6: write latency under RPC+RDMA / RPC / sPIN / Raw.
pub fn fig06() -> String {
    let cost = CostModel::paper();
    let mut t = Table::new(
        "Fig 6 — write latency by protocol (us)",
        &["size", "RPC+RDMA", "RPC", "sPIN", "Raw", "sPIN/Raw"],
    );
    let mut asym = [0.0f64; 4];
    for &size in &SIZES {
        let rr = write_latency_us(WriteProtocol::RpcRdma, FilePolicy::Plain, size, &cost, 3);
        let rp = write_latency_us(WriteProtocol::Rpc, FilePolicy::Plain, size, &cost, 3);
        let sp = write_latency_us(WriteProtocol::Spin, FilePolicy::Plain, size, &cost, 3);
        let rw = write_latency_us(WriteProtocol::Raw, FilePolicy::Plain, size, &cost, 3);
        if size == 1 << 20 {
            asym = [rr, rp, sp, rw];
        }
        t.row(vec![
            sz(size),
            f(rr),
            f(rp),
            f(sp),
            f(rw),
            format!("{:.2}x", sp / rw),
        ]);
    }
    let gbs = |us: f64| (1u64 << 20) as f64 / us / 1e3; // GB/s at 1 MiB
    t.note(format!(
        "asymptotic GB/s at 1MiB: RPC+RDMA {:.0}, RPC {:.0}, sPIN {:.0}, Raw {:.0} (paper labels: 26, 26, 40, 45)",
        gbs(asym[0]),
        gbs(asym[1]),
        gbs(asym[2]),
        gbs(asym[3])
    ));
    t.note("paper: sPIN overhead over Raw up to 27% for small writes, negligible for large");
    t.render()
}

/// Fig 7: PsPIN packet processing pipeline breakdown.
pub fn fig07() -> String {
    let cost = CostModel::paper();
    let stages = pipeline_breakdown_ns(&cost);
    let mut t = Table::new(
        "Fig 7 — PsPIN per-packet pipeline (2 KiB packet)",
        &["stage", "measured (ns)", "paper (ns)"],
    );
    let paper = [32.0, 2.0, 43.0, 1.0, 200.0];
    for ((name, ns), p) in stages.iter().zip(paper) {
        t.row(vec![name.clone(), f(*ns), f(p)]);
    }
    t.note("paper handler value is the 200-cycle validation; ours includes descriptor setup (Table I: 211 ns)");
    t.render()
}

/// Fig 9 (left/center): replication write latency for k=2 and k=4.
pub fn fig09_latency(k: u8) -> String {
    let cost = CostModel::paper();
    let strategies: Vec<ReplStrategy> = if k == 2 {
        // Ring and PBT coincide for k=2 (one child); show ring + flat + hl.
        vec![
            ReplStrategy::HyperLoop,
            ReplStrategy::CpuRing,
            ReplStrategy::RdmaFlat,
            ReplStrategy::SpinRing,
        ]
    } else {
        ReplStrategy::ALL.to_vec()
    };
    let mut header: Vec<&str> = vec!["size"];
    let labels: Vec<String> = strategies.iter().map(|s| s.label().to_string()).collect();
    header.extend(labels.iter().map(|s| s.as_str()));
    let mut t = Table::new(
        format!("Fig 9 — replication write latency, k={k} (us)"),
        &header,
    );
    for &size in &SIZES_COARSE {
        let mut cells = vec![sz(size)];
        for s in &strategies {
            let (lat, _) = write_latency_best_chunk(s.protocol(), s.policy(k), size, &cost);
            cells.push(f(lat));
        }
        t.row(cells);
    }
    if k == 2 {
        t.note("paper asymptotes (GB/s): sPIN 44, RDMA-Flat 22, CPU 13, HyperLoop 12; RDMA-Flat fastest below ~16 KiB, sPIN up to 2x better beyond");
    } else {
        t.note("paper asymptotes (GB/s): sPIN-Ring 39, sPIN-PBT 19, HyperLoop 18, RDMA-Flat 11, CPU-Ring 7.8, CPU-PBT 6.6; sPIN up to 2.16x better");
    }
    t.render()
}

/// Fig 9 (right): goodput sustained by the primary storage node.
pub fn fig09_goodput() -> String {
    let cost = CostModel::paper();
    let mut t = Table::new(
        "Fig 9 right — storage-node goodput (Gbit/s)",
        &["size", "k=1", "k=4 Ring", "k=4 PBT"],
    );
    for &size in &SIZES_COARSE {
        let n = if size >= (1 << 20) { 24 } else { 48 };
        let k1 = storage_goodput_gbit(WriteProtocol::Spin, FilePolicy::Plain, size, &cost, n, 8);
        let ring = storage_goodput_gbit(
            WriteProtocol::SpinReplicated,
            FilePolicy::Replicated {
                k: 4,
                strategy: BcastStrategy::Ring,
            },
            size,
            &cost,
            n,
            8,
        );
        let pbt = storage_goodput_gbit(
            WriteProtocol::SpinReplicated,
            FilePolicy::Replicated {
                k: 4,
                strategy: BcastStrategy::Pbt,
            },
            size,
            &cost,
            n,
            8,
        );
        t.row(vec![sz(size), f(k1), f(ring), f(pbt)]);
    }
    t.note("paper: k=1 and k=4-Ring reach line rate (~400) from 8 KiB; k=4-PBT about half (egress doubles)");
    t.render()
}

/// Fig 10: write latency vs replication factor at 4 KiB and 512 KiB.
pub fn fig10() -> String {
    let cost = CostModel::paper();
    let mut out = String::new();
    for (size, label) in [(4u32 << 10, "4KiB"), (512 << 10, "512KiB")] {
        let mut header: Vec<&str> = vec!["k"];
        let labels: Vec<String> = ReplStrategy::ALL
            .iter()
            .map(|s| s.label().to_string())
            .collect();
        header.extend(labels.iter().map(|s| s.as_str()));
        let mut t = Table::new(
            format!("Fig 10 — replication latency vs k, {label} writes (us)"),
            &header,
        );
        for k in [2u8, 4, 6, 8] {
            let mut cells = vec![k.to_string()];
            for s in ReplStrategy::ALL {
                let (lat, _) = write_latency_best_chunk(s.protocol(), s.policy(k), size, &cost);
                cells.push(f(lat));
            }
            t.row(cells);
        }
        if size == 4 << 10 {
            t.note("paper: RDMA-Flat lowest for small writes at any k; PBT beats Ring at large k");
        } else {
            t.note("paper: RDMA-Flat grows linearly with k; sPIN variants least sensitive to k");
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig 11 + Table I: handler runtimes for plain and replicated writes.
pub fn fig11_table1() -> String {
    let cost = CostModel::paper();
    let mut t = Table::new(
        "Table I / Fig 11 — handler statistics (256 KiB writes)",
        &[
            "config", "HH ns", "PH ns", "CH ns", "HH ins", "PH ins", "CH ins", "HH IPC", "PH IPC",
            "CH IPC",
        ],
    );
    let configs: [(&str, WriteProtocol, FilePolicy); 3] = [
        ("k=1", WriteProtocol::Spin, FilePolicy::Plain),
        (
            "k=4 Ring",
            WriteProtocol::SpinReplicated,
            FilePolicy::Replicated {
                k: 4,
                strategy: BcastStrategy::Ring,
            },
        ),
        (
            "k=4 PBT",
            WriteProtocol::SpinReplicated,
            FilePolicy::Replicated {
                k: 4,
                strategy: BcastStrategy::Pbt,
            },
        ),
    ];
    for (label, protocol, policy) in configs {
        let r = handler_report(protocol, policy, 256 << 10, &cost, 24, 8);
        let (hd, hi, hipc) = r.hh.unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        let (pd, pi, pipc) = r.ph.unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        let (cd, ci, cipc) = r.ch.unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        t.row(vec![
            label.to_string(),
            f(hd),
            f(pd),
            f(cd),
            f(hi),
            f(pi),
            f(ci),
            format!("{hipc:.2}"),
            format!("{pipc:.2}"),
            format!("{cipc:.2}"),
        ]);
    }
    t.note("paper Table I: k=1 211/92/107 ns; Ring PH 193 ns; PBT PH 2106 ns at IPC 0.06 (egress-stall collapse)");
    t.note("budget lines: 1310 ns (400G, 32 HPUs), 2621 ns (200G) per Fig 11");
    t.render()
}

/// Fig 15: EC encoding latency (left) and throughput (right), 100 Gbit/s.
pub fn fig15() -> String {
    let cost = CostModel::paper().with_network_gbit(100);
    let mut out = String::new();

    let mut t = Table::new(
        "Fig 15 left — RS(3,2) encoding latency (us), 100 Gbit/s",
        &["chunk", "sPIN-TriEC", "INEC-TriEC", "speedup"],
    );
    for &chunk in &[4u32 << 10, 16 << 10, 64 << 10, 256 << 10] {
        let spin = ec_encode_latency_us(true, RsScheme::new(3, 2), chunk, &cost);
        let inec = ec_encode_latency_us(false, RsScheme::new(3, 2), chunk, &cost);
        t.row(vec![
            sz(chunk),
            f(spin),
            f(inec),
            format!("{:.2}x", inec / spin),
        ]);
    }
    t.note("paper: sPIN-TriEC up to 2x lower latency (per-packet streaming vs per-chunk store-and-forward)");
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(
        "Fig 15 right — encoding throughput (Gbit/s), 100 Gbit/s",
        &[
            "chunk",
            "sPIN RS(3,2)",
            "sPIN RS(6,3)",
            "INEC RS(6,3)",
            "sPIN/INEC RS(6,3)",
        ],
    );
    for &chunk in &[1u32 << 10, 8 << 10, 64 << 10, 512 << 10] {
        let s32 = ec_encode_throughput_gbit(true, RsScheme::new(3, 2), chunk, &cost, 24, 8);
        let s63 = ec_encode_throughput_gbit(true, RsScheme::new(6, 3), chunk, &cost, 24, 8);
        let i63 = ec_encode_throughput_gbit(false, RsScheme::new(6, 3), chunk, &cost, 24, 8);
        t.row(vec![
            sz(chunk),
            f(s32),
            f(s63),
            f(i63),
            format!("{:.1}x", s63 / i63),
        ]);
    }
    t.note("paper: sPIN-TriEC 29x better at 1 KiB, 3.3x at 512 KiB (INEC fixed per-chunk overheads amortize)");
    out.push_str(&t.render());
    out
}

/// Fig 16 + Table II: EC handler runtimes and the HPU line-rate budget.
pub fn fig16_table2() -> String {
    let cost = CostModel::paper().with_network_gbit(100);
    let mut out = String::new();

    let mut t = Table::new(
        "Table II / Fig 16 left — EC handler statistics (64 KiB chunks)",
        &["scheme", "HH ns", "PH ns", "CH ns", "PH instrs", "PH IPC"],
    );
    let mut ph_durations = Vec::new();
    for (label, scheme) in [
        ("RS(3,2)", RsScheme::new(3, 2)),
        ("RS(6,3)", RsScheme::new(6, 3)),
    ] {
        let r = handler_report(
            WriteProtocol::SpinTriec { interleave: true },
            FilePolicy::ErasureCoded { scheme },
            64 << 10,
            &cost,
            6,
            2,
        );
        let (hd, ..) = r.hh.unwrap_or((f64::NAN, 0.0, 0.0));
        let (pd, pi, pipc) = r.ph.unwrap_or((f64::NAN, 0.0, 0.0));
        let (cd, ..) = r.ch.unwrap_or((f64::NAN, 0.0, 0.0));
        ph_durations.push((label, pd));
        t.row(vec![
            label.to_string(),
            f(hd),
            f(pd),
            f(cd),
            f(pi),
            format!("{pipc:.2}"),
        ]);
    }
    t.note("paper Table II (data-node encode PH on full packets): RS(3,2) 16681 ns / 11672 ins; RS(6,3) 23018 ns / 16028 ins @ IPC 0.7");
    t.note("our PH mean mixes data-node encode and parity-node XOR handlers; see per-kind breakdown in EXPERIMENTS.md");
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(
        "Fig 16 right — HPUs needed to sustain line rate (2 KiB packets)",
        &[
            "handler duration (us)",
            "100 Gbit/s",
            "200 Gbit/s",
            "400 Gbit/s",
        ],
    );
    for d_us in [1.0f64, 5.0, 10.0, 16.7, 23.0, 25.0] {
        t.row(vec![
            format!("{d_us:.1}"),
            analysis::hpus_for_line_rate(d_us * 1e3, Bandwidth::from_gbit_per_sec(100), 2048)
                .to_string(),
            analysis::hpus_for_line_rate(d_us * 1e3, Bandwidth::from_gbit_per_sec(200), 2048)
                .to_string(),
            analysis::hpus_for_line_rate(d_us * 1e3, Bandwidth::from_gbit_per_sec(400), 2048)
                .to_string(),
        ]);
    }
    t.note("paper: ~512 HPUs sustain 400 Gbit/s for RS(6,3) handlers (~23 us)");
    out.push_str(&t.render());
    out
}

/// Table III: DFS characteristics survey (static catalogue).
pub fn table3() -> String {
    let mut t = Table::new(
        "Table III — DFS characteristics survey",
        &["DFS", "RDMA", "Auth", "Repl", "EC", "notes"],
    );
    for r in analysis::dfs_survey() {
        t.row(vec![
            r.name.to_string(),
            r.rdma.glyph().to_string(),
            r.auth.glyph().to_string(),
            r.replication.glyph().to_string(),
            r.erasure_coding.glyph().to_string(),
            r.notes.to_string(),
        ]);
    }
    t.render()
}

/// Ablation (§VI-B-1): interleaved vs sequential TriEC transmission.
pub fn ablation_interleave() -> String {
    let cost = CostModel::paper().with_network_gbit(100);
    let mut t = Table::new(
        "Ablation — client packet interleaving for sPIN-TriEC RS(3,2) (us)",
        &[
            "chunk",
            "interleaved",
            "sequential",
            "sequential/interleaved",
        ],
    );
    for &chunk in &[16u32 << 10, 64 << 10, 256 << 10] {
        let scheme = RsScheme::new(3, 2);
        let policy = FilePolicy::ErasureCoded { scheme };
        let il = write_latency_us(
            WriteProtocol::SpinTriec { interleave: true },
            policy.clone(),
            chunk * 3,
            &cost,
            3,
        );
        let seq = write_latency_us(
            WriteProtocol::SpinTriec { interleave: false },
            policy,
            chunk * 3,
            &cost,
            3,
        );
        t.row(vec![sz(chunk), f(il), f(seq), format!("{:.2}x", seq / il)]);
    }
    t.note("paper §VI-B-1: without interleaving, parity aggregation is delayed and accumulators stay allocated longer");
    t.render()
}

/// Ablation (§V-B): chunk-size sensitivity of the chunked protocols.
pub fn ablation_chunk_size() -> String {
    let cost = CostModel::paper();
    let size = 512u32 << 10;
    let mut t = Table::new(
        "Ablation — chunk size for CPU-Ring and HyperLoop, k=4, 512 KiB (us)",
        &["chunk", "CPU-Ring", "RDMA-HyperLoop"],
    );
    let policy = FilePolicy::Replicated {
        k: 4,
        strategy: BcastStrategy::Ring,
    };
    for &chunk in &[8u32 << 10, 32 << 10, 128 << 10, 512 << 10] {
        let cpu = write_latency_us(
            WriteProtocol::CpuBcast { chunk },
            policy.clone(),
            size,
            &cost,
            3,
        );
        let hl = write_latency_us(
            WriteProtocol::HyperLoop { chunk },
            policy.clone(),
            size,
            &cost,
            3,
        );
        t.row(vec![sz(chunk), f(cpu), f(hl)]);
    }
    t.note("small chunks pipeline better but pay per-chunk overheads; the figures use the per-point optimum");
    t.render()
}

/// Ablation: sensitivity to NIC egress-queue and packet-buffer depths —
/// the knobs behind the emergent PBT stalls and ingress backpressure.
pub fn ablation_queues() -> String {
    let mut t = Table::new(
        "Ablation — queue depths vs sPIN-PBT k=4 latency, 256 KiB (us)",
        &["egress slots", "pktbuf slots", "latency", "goodput Gbit/s"],
    );
    for (up, buf) in [(4usize, 16usize), (16, 64), (64, 256)] {
        let mut cost = CostModel::paper();
        cost.fabric.up_queue_cap = up;
        cost.pspin.pktbuf_slots = buf;
        let policy = FilePolicy::Replicated {
            k: 4,
            strategy: BcastStrategy::Pbt,
        };
        let lat = write_latency_us(
            WriteProtocol::SpinReplicated,
            policy.clone(),
            256 << 10,
            &cost,
            3,
        );
        let good = storage_goodput_gbit(
            WriteProtocol::SpinReplicated,
            policy,
            256 << 10,
            &cost,
            16,
            8,
        );
        t.row(vec![up.to_string(), buf.to_string(), f(lat), f(good)]);
    }
    t.note("deeper queues absorb the PBT egress doubling a little longer; goodput stays ~half of line rate regardless (the bottleneck is bandwidth, not buffering)");
    t.render()
}

/// Run every harness, in paper order.
pub fn run_all() -> String {
    let mut out = String::new();
    for (name, text) in [
        ("fig04", fig04()),
        ("fig06", fig06()),
        ("fig07", fig07()),
        ("fig09_k2", fig09_latency(2)),
        ("fig09_k4", fig09_latency(4)),
        ("fig09_goodput", fig09_goodput()),
        ("fig10", fig10()),
        ("fig11_table1", fig11_table1()),
        ("fig15", fig15()),
        ("fig16_table2", fig16_table2()),
        ("table3", table3()),
        ("ablation_interleave", ablation_interleave()),
        ("ablation_chunk_size", ablation_chunk_size()),
        ("ablation_queues", ablation_queues()),
    ] {
        let _ = name;
        out.push_str(&text);
        out.push('\n');
    }
    out
}
