//! Metadata-shard scaling benchmark.
//!
//! Drives the [`nadfs_core::MetaWorkload`] dir-op mix plus stat storm
//! through the simulated cluster at 1 → 2 → 4 → 8 metadata shards with
//! the client cache disabled, so every op lands on the control plane
//! and queues behind its shard's single-server admission point. The
//! headline is shard scaling: with enough client concurrency the
//! single-shard plane saturates at the mutation service rate, and the
//! sharded planes peel the queue apart — dir-op throughput must grow
//! monotonically with the shard count and clear 2x at 4 shards.
//!
//! Also reported per point: resolve (stat-storm) throughput, the mean
//! admission wait each routed op ate, 2PC cross-shard transactions
//! (unlinks and cross-directory renames), and the per-shard mutation
//! balance min/max — a routing-quality check on the splitmix ino hash.

use nadfs_core::{ClusterSpec, LayoutSpec, MetaOpKind, MetaWorkload, SimCluster, StorageMode};

use crate::report::{f, Table};

const MUTATIONS: [MetaOpKind; 4] = [
    MetaOpKind::Mkdir,
    MetaOpKind::Create,
    MetaOpKind::Rename,
    MetaOpKind::Unlink,
];
const RESOLVES: [MetaOpKind; 2] = [MetaOpKind::Lookup, MetaOpKind::Readdir];

/// One point on the shard-scaling curve.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardPoint {
    pub shards: usize,
    pub clients: usize,
    /// Completed mutations (mkdir/create/rename/unlink).
    pub dir_ops: usize,
    /// Completed resolves (lookup/readdir).
    pub resolves: usize,
    /// Mutations per simulated second over the mutation span.
    pub dir_ops_per_sec: f64,
    /// Resolves per simulated second over the resolve span.
    pub resolves_per_sec: f64,
    pub mutation_mean_us: f64,
    pub mutation_p99_us: f64,
    /// Mean shard-admission wait per routed op (queue_wait / ops), us.
    pub queue_wait_us_per_op: f64,
    /// Two-phase cross-shard transactions coordinated.
    pub cross_shard_txns: u64,
    /// min/max per-shard mutation count: 1.0 = perfectly balanced
    /// routing, 0 = at least one shard sat idle.
    pub balance: f64,
}

#[derive(Clone, Debug, Default)]
pub struct MetaShardReport {
    pub points: Vec<ShardPoint>,
    /// Dir-op throughput at 4 shards over 1 shard (0 if either point is
    /// missing) — the acceptance headline.
    pub speedup_at_4: f64,
    /// `nadfs-metrics-v1` snapshot of the largest-shard run (the
    /// `meta.shard.N.*` counters included) for regression diffs.
    pub snapshot_json: String,
}

/// Workload knobs, full vs CI-smoke sized.
#[derive(Clone, Debug)]
pub struct Sizes {
    pub shard_points: Vec<usize>,
    pub clients: usize,
    pub dirs: usize,
    pub files_per_dir: usize,
    pub storm: usize,
}

impl Sizes {
    pub fn full() -> Sizes {
        Sizes {
            shard_points: vec![1, 2, 4, 8],
            clients: 32,
            dirs: 4,
            files_per_dir: 16,
            storm: 96,
        }
    }

    /// CI smoke: keeps the 1-vs-4 headline, small enough for a test job.
    pub fn smoke() -> Sizes {
        Sizes {
            shard_points: vec![1, 4],
            clients: 16,
            dirs: 4,
            files_per_dir: 8,
            storm: 32,
        }
    }
}

/// Throughput of `kinds` ops over their own first-start..last-end span.
fn phase_rate(results: &nadfs_core::ResultSink, kinds: &[MetaOpKind]) -> (usize, f64, Vec<f64>) {
    let mine: Vec<_> = results
        .metas
        .iter()
        .filter(|m| kinds.contains(&m.op))
        .collect();
    if mine.is_empty() {
        return (0, 0.0, Vec::new());
    }
    let t0 = mine.iter().map(|m| m.start).min().unwrap();
    let t1 = mine.iter().map(|m| m.end).max().unwrap();
    let span_s = t1.since(t0).ps() as f64 / 1e12;
    let us: Vec<f64> = mine
        .iter()
        .map(|m| m.end.since(m.start).ps() as f64 / 1e6)
        .collect();
    (mine.len(), mine.len() as f64 / span_s.max(1e-12), us)
}

fn lat_us(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let p99 = samples[(samples.len() - 1).min(samples.len() * 99 / 100)];
    (mean, p99)
}

/// One scaling point: the full dir-op mix against `shards` shards.
fn run_point(shards: usize, sizes: &Sizes) -> (ShardPoint, String) {
    let spec = ClusterSpec::new(sizes.clients, 4, StorageMode::Plain).with_meta_shards(shards);
    let mut cl = SimCluster::build_with(spec, |app| {
        // Cache off: every lookup round-trips and queues on its shard —
        // the bench measures the plane, not the client cache.
        app.cache_enabled = false;
        app.bulk_meta_spans = true;
    });
    let w = MetaWorkload::new("/bench")
        .with_dirs(sizes.dirs, sizes.files_per_dir)
        .with_storm(sizes.storm)
        .with_layout(LayoutSpec::striped(2, 64 << 10))
        .with_seed(7);
    w.prepare(&cl.control);
    let mut n = 0;
    for c in 0..sizes.clients {
        for j in w.jobs_for_client(c) {
            cl.submit(c, j);
            n += 1;
        }
    }
    cl.start();
    let done = cl.run_until_metas(n, 600_000);
    assert_eq!(done, n, "metadata storm must complete");

    let (dir_ops, dir_rate, mut mut_us, resolves, res_rate) = {
        let results = cl.results.borrow();
        assert!(
            results.metas.iter().all(|m| m.result.is_ok()),
            "the dir-op mix must not fail"
        );
        let (dir_ops, dir_rate, mut_us) = phase_rate(&results, &MUTATIONS);
        let (resolves, res_rate, _) = phase_rate(&results, &RESOLVES);
        (dir_ops, dir_rate, mut_us, resolves, res_rate)
    };
    let (mean, p99) = lat_us(&mut mut_us);

    let stats = cl.control.borrow().shard_stats();
    let ops: u64 = stats.iter().map(|s| s.ops).sum();
    let wait_ps: u64 = stats.iter().map(|s| s.queue_wait_ps).sum();
    let txns: u64 = stats.iter().map(|s| s.cross_shard_txns).sum();
    let muts_min = stats.iter().map(|s| s.mutations).min().unwrap_or(0);
    let muts_max = stats.iter().map(|s| s.mutations).max().unwrap_or(0);
    let point = ShardPoint {
        shards,
        clients: sizes.clients,
        dir_ops,
        resolves,
        dir_ops_per_sec: dir_rate,
        resolves_per_sec: res_rate,
        mutation_mean_us: mean,
        mutation_p99_us: p99,
        queue_wait_us_per_op: wait_ps as f64 / ops.max(1) as f64 / 1e6,
        cross_shard_txns: txns,
        balance: muts_min as f64 / muts_max.max(1) as f64,
    };
    (point, cl.metrics_snapshot().to_json_indented(2))
}

pub fn run_sized(sizes: &Sizes) -> MetaShardReport {
    let mut points = Vec::new();
    let mut snapshot_json = String::new();
    for &s in &sizes.shard_points {
        let (p, snap) = run_point(s, sizes);
        snapshot_json = snap;
        points.push(p);
    }
    let at = |n: usize| points.iter().find(|p| p.shards == n);
    let speedup_at_4 = match (at(1), at(4)) {
        (Some(one), Some(four)) if one.dir_ops_per_sec > 0.0 => {
            four.dir_ops_per_sec / one.dir_ops_per_sec
        }
        _ => 0.0,
    };
    MetaShardReport {
        points,
        speedup_at_4,
        snapshot_json,
    }
}

pub fn run() -> MetaShardReport {
    run_sized(&Sizes::full())
}

pub fn run_smoke() -> MetaShardReport {
    run_sized(&Sizes::smoke())
}

pub fn render(r: &MetaShardReport) -> String {
    let mut t = Table::new(
        "meta_shard — dir-op / resolve throughput vs metadata shard count (client cache off)",
        &[
            "shards",
            "clients",
            "dir ops",
            "dir kops/s",
            "resolve kops/s",
            "mut mean us",
            "mut p99 us",
            "wait us/op",
            "2pc txns",
            "balance",
        ],
    );
    for p in &r.points {
        t.row(vec![
            p.shards.to_string(),
            p.clients.to_string(),
            p.dir_ops.to_string(),
            f(p.dir_ops_per_sec / 1e3),
            f(p.resolves_per_sec / 1e3),
            f(p.mutation_mean_us),
            f(p.mutation_p99_us),
            f(p.queue_wait_us_per_op),
            p.cross_shard_txns.to_string(),
            format!("{:.2}", p.balance),
        ]);
    }
    t.note(format!(
        "dir-op throughput at 4 shards is {:.2}x the single-shard plane; \
         acks land after the op-log append, mutate service is shard occupancy",
        r.speedup_at_4
    ));
    t.render()
}

pub fn to_json(r: &MetaShardReport) -> String {
    let mut s = String::from("{\n  \"bench\": \"meta_shard\",\n  \"points\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shards\": {}, \"clients\": {}, \"dir_ops\": {}, \"resolves\": {}, \
             \"dir_ops_per_sec\": {:.1}, \"resolves_per_sec\": {:.1}, \
             \"mutation_mean_us\": {:.3}, \"mutation_p99_us\": {:.3}, \
             \"queue_wait_us_per_op\": {:.4}, \"cross_shard_txns\": {}, \
             \"balance\": {:.4}}}{}\n",
            p.shards,
            p.clients,
            p.dir_ops,
            p.resolves,
            p.dir_ops_per_sec,
            p.resolves_per_sec,
            p.mutation_mean_us,
            p.mutation_p99_us,
            p.queue_wait_us_per_op,
            p.cross_shard_txns,
            p.balance,
            if i + 1 < r.points.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"speedup_at_4\": {:.4},\n",
        r.speedup_at_4
    ));
    if r.snapshot_json.is_empty() {
        s.push_str("  \"metrics_snapshot\": null\n");
    } else {
        s.push_str(&format!("  \"metrics_snapshot\": {}\n", r.snapshot_json));
    }
    s.push_str("}\n");
    s
}

/// The CI smoke gate: the invariants the PR promises, asserted on a
/// report (the binary runs this on `--smoke`; tests run it too).
pub fn assert_invariants(r: &MetaShardReport) {
    assert!(!r.points.is_empty(), "at least one scaling point");
    // Monotonic scaling: each added shard must not lose dir-op
    // throughput (5% tolerance for routing noise at the top end).
    for w in r.points.windows(2) {
        assert!(
            w[1].dir_ops_per_sec >= w[0].dir_ops_per_sec * 0.95,
            "dir-op throughput regressed {} -> {} shards: {:.0} -> {:.0} ops/s",
            w[0].shards,
            w[1].shards,
            w[0].dir_ops_per_sec,
            w[1].dir_ops_per_sec
        );
        assert!(
            w[1].resolves_per_sec >= w[0].resolves_per_sec * 0.95,
            "resolve throughput regressed {} -> {} shards: {:.0} -> {:.0} ops/s",
            w[0].shards,
            w[1].shards,
            w[0].resolves_per_sec,
            w[1].resolves_per_sec
        );
    }
    // The acceptance headline: >= 2x dir-op throughput at 4 shards.
    if r.points.iter().any(|p| p.shards == 4) {
        assert!(
            r.speedup_at_4 >= 2.0,
            "4-shard plane must double single-shard dir-op throughput, got {:.2}x",
            r.speedup_at_4
        );
    }
    for p in &r.points {
        if p.shards > 1 {
            assert!(
                p.cross_shard_txns > 0,
                "{}-shard run coordinated no 2PC transactions — unlinks and \
                 renames should cross shards",
                p.shards
            );
            assert!(
                p.balance > 0.0,
                "{}-shard run left a shard with zero mutations",
                p.shards
            );
        }
    }
    // Sharding must relieve the admission queue, not just add capacity
    // on paper: the widest plane waits less per op than the monolith.
    let first = r.points.first().unwrap();
    let last = r.points.last().unwrap();
    if last.shards > first.shards {
        assert!(
            last.queue_wait_us_per_op < first.queue_wait_us_per_op,
            "per-op admission wait must drop with shards: {:.3}us at {} vs {:.3}us at {}",
            first.queue_wait_us_per_op,
            first.shards,
            last.queue_wait_us_per_op,
            last.shards
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance bar at smoke size: monotonic shard scaling,
    /// at least 2x dir-op throughput at 4 shards, 2PC traffic present,
    /// queue wait relieved.
    #[test]
    fn smoke_report_holds_the_scaling_invariants() {
        let r = run_smoke();
        assert_invariants(&r);
        let out = render(&r);
        assert!(out.contains("meta_shard"));
        assert!(out.contains("2pc txns"));
        let json = to_json(&r);
        assert!(json.contains("\"bench\": \"meta_shard\""));
        assert!(json.contains("\"speedup_at_4\""));
        let v = nadfs_simnet::telemetry::json::parse(&json).expect("bench JSON parses");
        let snap = v.get("metrics_snapshot").expect("snapshot embedded");
        assert_eq!(
            snap.get("schema")
                .and_then(nadfs_simnet::telemetry::json::Json::as_str),
            Some(nadfs_simnet::SNAPSHOT_SCHEMA)
        );
    }
}
