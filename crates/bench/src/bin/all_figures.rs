//! Regenerates every table and figure of the paper in one run.
fn main() {
    print!("{}", nadfs_bench::figures::run_all());
}
