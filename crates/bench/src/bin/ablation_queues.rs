//! Regenerates the queue-depth ablation (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::ablation_queues());
}
