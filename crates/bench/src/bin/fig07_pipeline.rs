//! Regenerates the paper's fig07 (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::fig07());
}
