//! Regenerates the paper's fig06 (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::fig06());
}
