//! Regenerates the paper's ablation_interleave (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::ablation_interleave());
}
