//! EC data-path throughput: seed kernels vs wide-word + pooled streaming
//! (see nadfs_bench::ec_throughput). Writes `BENCH_ec_throughput.json`.

fn main() {
    let report = nadfs_bench::ec_throughput::run();
    print!("{}", nadfs_bench::ec_throughput::render(&report));
    let json = nadfs_bench::ec_throughput::to_json(&report);
    let path = "BENCH_ec_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
