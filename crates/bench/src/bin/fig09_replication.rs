//! Regenerates Fig 9: replication latency (k=2, k=4) and goodput.
fn main() {
    print!("{}", nadfs_bench::figures::fig09_latency(2));
    println!();
    print!("{}", nadfs_bench::figures::fig09_latency(4));
    println!();
    print!("{}", nadfs_bench::figures::fig09_goodput());
}
