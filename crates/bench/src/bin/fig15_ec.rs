//! Regenerates the paper's fig15 (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::fig15());
}
