//! Regenerates the paper's fig11_table1 (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::fig11_table1());
}
