//! Regenerates the paper's fig04 (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::fig04());
}
