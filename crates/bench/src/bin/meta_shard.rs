//! Metadata-shard scaling bench binary.
//!
//! `cargo run --release -p nadfs-bench --bin meta_shard` — full sweep
//! (1 → 2 → 4 → 8 shards), writes `BENCH_meta_shard.json`.
//! `--smoke` (or `NADFS_BENCH_SMOKE=1`) runs the CI-sized sweep and
//! asserts the scaling invariants.

use nadfs_bench::meta_shard;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("NADFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let report = if smoke {
        meta_shard::run_smoke()
    } else {
        meta_shard::run()
    };
    println!("{}", meta_shard::render(&report));
    if smoke {
        meta_shard::assert_invariants(&report);
        println!("smoke invariants hold");
    }
    let json = meta_shard::to_json(&report);
    std::fs::write("BENCH_meta_shard.json", &json).expect("write BENCH_meta_shard.json");
    println!("wrote BENCH_meta_shard.json");
}
