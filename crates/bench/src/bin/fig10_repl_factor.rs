//! Regenerates the paper's fig10 (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::fig10());
}
