//! Regenerates the paper's ablation_chunk_size (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::ablation_chunk_size());
}
