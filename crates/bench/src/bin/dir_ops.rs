//! Directory-operation latencies through the simulated cluster, with the
//! client metadata cache off and on (see nadfs_bench::dir_ops).
fn main() {
    print!("{}", nadfs_bench::dir_ops::dir_ops());
}
