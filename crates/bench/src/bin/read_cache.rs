//! Client read cache + readahead: cached vs uncached `read_at` latency,
//! throughput, hit rate, and control-RPC reduction (see
//! nadfs_bench::read_cache). Writes `BENCH_read_cache.json`.

fn main() {
    let report = nadfs_bench::read_cache::run();
    print!("{}", nadfs_bench::read_cache::render(&report));
    let json = nadfs_bench::read_cache::to_json(&report);
    let path = "BENCH_read_cache.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
