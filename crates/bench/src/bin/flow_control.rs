//! Flow-control / QoS saturation bench: aggregate goodput vs client
//! count, weighted-tenant starvation resistance, equal-tenant fairness
//! floor (see nadfs_bench::flow_control). Writes
//! `BENCH_flow_control.json`. `--smoke` (or `NADFS_BENCH_SMOKE=1`) runs
//! the CI-sized workload and asserts the fairness invariants.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("NADFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let report = if smoke {
        nadfs_bench::flow_control::run_smoke()
    } else {
        nadfs_bench::flow_control::run()
    };
    print!("{}", nadfs_bench::flow_control::render(&report));
    if smoke {
        nadfs_bench::flow_control::assert_invariants(&report);
        println!("  smoke invariants hold");
    }
    let json = nadfs_bench::flow_control::to_json(&report);
    let path = "BENCH_flow_control.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
