//! Regenerates the paper's table3 (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::table3());
}
