//! Regenerates the paper's fig16_table2 (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::fig16_table2());
}
