//! Regenerates the paper's fig09_goodput (see nadfs_bench::figures).
fn main() {
    print!("{}", nadfs_bench::figures::fig09_goodput());
}
