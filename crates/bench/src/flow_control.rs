//! Flow-control / QoS saturation benchmark: aggregate goodput as the
//! client count scales against a fixed storage fleet, plus per-tenant
//! fairness under deliberate contention.
//!
//! Three sections:
//!
//! - **scale** — N clients (4 → 64) flood 4 storage nodes with 64 KiB
//!   RPC writes under credit-based flow control. The headline is that
//!   aggregate goodput stays flat once the fleet saturates (~16
//!   clients): admission happens in the pending-WR queues, not by
//!   collapsing under overload.
//! - **weighted** — the starvation scenario: a 2-client tenant with
//!   weight 4 shares one storage node's RPC service point with a
//!   6-client weight-1 aggressor. The DRR scheduler must hold the
//!   protected tenant's mid-contention service share near its
//!   configured 4/5 regardless of the 3x client-count disadvantage.
//! - **equal** — four equal-weight tenants; the min/max per-tenant
//!   goodput ratio is the no-starvation floor CI asserts in smoke mode.

use nadfs_core::{
    ClusterSpec, CostModel, FilePolicy, QosConfig, SimCluster, SizeDist, StorageMode, Workload,
    WriteProtocol,
};
use nadfs_simnet::{CreditConfig, MetricsSnapshot};
use nadfs_wire::Status;

use crate::report::{f, Table};

const BLOCK: u32 = 64 << 10;

/// One point on the saturation curve.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalePoint {
    pub clients: usize,
    pub writes: usize,
    pub bytes: u64,
    pub goodput_gbps: f64,
    pub mean_us: f64,
    pub p99_us: f64,
    /// WRs that waited in a pending queue for credit.
    pub queued: u64,
    /// Credit admission failures (local + remote).
    pub stalls: u64,
}

/// One tenant's outcome in a fairness scenario.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantStat {
    pub tenant: u16,
    pub weight: u32,
    pub clients: usize,
    pub writes: usize,
    pub bytes: u64,
    /// Weight / sum-of-weights: the share DRR promises while every
    /// tenant stays backlogged.
    pub share_configured: f64,
    /// Fraction of dispatched service cost this tenant held at the last
    /// sample before any tenant drained its queue.
    pub share_measured: f64,
    pub mean_us: f64,
    pub p99_us: f64,
    /// This tenant's bytes over its own first-submit..last-complete span.
    pub goodput_gbps: f64,
}

/// A contention scenario: tenants, their shares, and the fairness floor.
#[derive(Clone, Debug, Default)]
pub struct FairnessSection {
    pub tenants: Vec<TenantStat>,
    /// min/max per-tenant goodput, weight-normalized (each tenant's
    /// goodput divided by its weight share) so weighted and equal
    /// scenarios read on the same scale: 1.0 = perfectly fair.
    pub min_max_ratio: f64,
}

#[derive(Clone, Debug, Default)]
pub struct FlowControlReport {
    pub scale: Vec<ScalePoint>,
    /// Goodput at the largest scale over goodput at the saturation knee
    /// (the first scale point with >= 16 clients): ~1.0 means overload
    /// queues instead of collapsing.
    pub scale_flatness: f64,
    pub weighted: FairnessSection,
    pub equal: FairnessSection,
    /// `nadfs-metrics-v1` snapshot of the largest scale run (flow.* and
    /// tenant.* counters included) for regression diffs.
    pub snapshot_json: String,
}

/// Workload knobs, full vs CI-smoke sized.
#[derive(Clone, Debug)]
pub struct Sizes {
    pub scale_points: Vec<usize>,
    pub scale_writes_per_client: usize,
    pub fair_writes_per_client: usize,
}

impl Sizes {
    pub fn full() -> Sizes {
        Sizes {
            scale_points: vec![4, 16, 64],
            scale_writes_per_client: 12,
            fair_writes_per_client: 24,
        }
    }

    /// CI smoke: same shape, small enough to ride a test job.
    pub fn smoke() -> Sizes {
        Sizes {
            scale_points: vec![4, 16],
            scale_writes_per_client: 6,
            fair_writes_per_client: 12,
        }
    }
}

fn lat_us(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let p99 = samples[(samples.len() - 1).min(samples.len() * 99 / 100)];
    (mean, p99)
}

fn counter(m: &MetricsSnapshot, name: &str) -> u64 {
    m.counter(name).unwrap_or(0)
}

/// One saturation point: `n_clients` each RPC-writing a private file
/// through the credit-gated send path into 4 storage nodes.
fn run_scale(n_clients: usize, writes_per_client: usize) -> (ScalePoint, String) {
    // Budgets tighter than the client window so the deep issue stream
    // actually lands in the pending-WR queue and drains on credit.
    let qos = QosConfig {
        enabled: true,
        credit: CreditConfig {
            max_send_data: 2,
            max_send_imm: 2,
            max_send_read: 4,
            max_send_write: 4,
        },
        ..Default::default()
    };
    let spec = ClusterSpec::new(n_clients, 4, StorageMode::Plain)
        .with_window(8)
        .with_qos(qos);
    let mut cl = SimCluster::build(spec);
    for c in 0..n_clients {
        let file = cl.control.borrow_mut().create_file(0, FilePolicy::Plain);
        let w = Workload::new(file.id, WriteProtocol::Rpc, SizeDist::Fixed(BLOCK))
            .with_writes(writes_per_client)
            .with_seed(0xF70 + c as u64);
        for j in w.jobs_for_client(c) {
            cl.submit(c, j);
        }
    }
    cl.start();
    let n = n_clients * writes_per_client;
    let done = cl.run_until_writes(n, 600_000);
    assert_eq!(done, n, "saturation run must complete");

    let (bytes, span_s, mean, p99) = {
        let results = cl.results.borrow();
        assert!(
            results.writes.iter().all(|w| w.status == Status::Ok),
            "flow control must not fail writes"
        );
        let bytes: u64 = results.writes.iter().map(|w| w.size as u64).sum();
        let t0 = results.writes.iter().map(|w| w.start).min().unwrap();
        let t1 = results.writes.iter().map(|w| w.end).max().unwrap();
        let mut us: Vec<f64> = results
            .writes
            .iter()
            .map(|w| w.end.since(w.start).ps() as f64 / 1e6)
            .collect();
        let (mean, p99) = lat_us(&mut us);
        (bytes, t1.since(t0).ps() as f64 / 1e12, mean, p99)
    };
    let m = cl.metrics_snapshot();
    let point = ScalePoint {
        clients: n_clients,
        writes: n,
        bytes,
        goodput_gbps: bytes as f64 / span_s.max(1e-12) / 1e9,
        mean_us: mean,
        p99_us: p99,
        queued: counter(&m, "flow.queued"),
        stalls: counter(&m, "flow.local_stalls") + counter(&m, "flow.remote_stalls"),
    };
    (point, m.to_json_indented(2))
}

/// One contention scenario: `tenants` = (weight, n_clients) per tenant,
/// every client hammering its own file on ONE storage node whose RPC
/// service point runs at concurrency 1 — all fairness comes from the
/// DRR scheduler. Returns per-tenant stats with the mid-contention
/// service share (sampled just before the first tenant drains).
fn run_fairness(tenants: &[(u32, usize)], writes_per_client: usize) -> FairnessSection {
    let qos = QosConfig {
        enabled: true,
        rpc_concurrency: 1,
        quantum: 16 << 10,
        weights: tenants
            .iter()
            .enumerate()
            .map(|(i, &(w, _))| (i as u16 + 1, w))
            .collect(),
        ..Default::default()
    };
    let n_clients: usize = tenants.iter().map(|&(_, n)| n).sum();
    // Make the host CPU the bottleneck the scheduler protects: with the
    // wire outpacing the store path, RPCs pile up in the DRR queues and
    // service shares are the scheduler's to hand out. (At the default
    // costs the single ingress link paces arrivals instead, and the
    // queue never builds.) Deep windows keep even a 2-client tenant
    // backlogged: the DRR share is only promised to queued work.
    let mut cost = CostModel::paper();
    cost.nic.cpu.memcpy_bw = nadfs_simnet::Bandwidth::from_gbyte_per_sec(4);
    let spec = ClusterSpec::new(n_clients, 1, StorageMode::Plain)
        .with_window(8)
        .with_cost(cost)
        .with_qos(qos);
    let mut cl = SimCluster::build(spec);

    // Client c -> tenant id, in declaration order.
    let mut tenant_of = Vec::with_capacity(n_clients);
    for (i, &(_, n)) in tenants.iter().enumerate() {
        for _ in 0..n {
            tenant_of.push(i as u16 + 1);
        }
    }
    for (c, &t) in tenant_of.iter().enumerate() {
        cl.set_client_tenant(c, t);
        let file = cl.control.borrow_mut().create_file(0, FilePolicy::Plain);
        let w = Workload::new(file.id, WriteProtocol::Rpc, SizeDist::Fixed(BLOCK))
            .with_writes(writes_per_client)
            .with_seed(0x7E17 + c as u64);
        for j in w.jobs_for_client(c) {
            cl.submit(c, j);
        }
    }
    cl.start();

    // Sample dispatched-cost shares while EVERY tenant is still
    // backlogged: step in small slices, keep the latest ledger snapshot,
    // stop as soon as any tenant has completed its full write count.
    let totals: Vec<usize> = tenants
        .iter()
        .map(|&(_, n)| n * writes_per_client)
        .collect();
    let node_tenant: Vec<u16> = (0..n_clients).map(|c| tenant_of[c]).collect();
    let done_per_tenant = |cl: &SimCluster| -> Vec<usize> {
        let results = cl.results.borrow();
        let mut done = vec![0usize; tenants.len()];
        for w in results.writes.iter() {
            let c = cl
                .client_nodes
                .iter()
                .position(|&n| n == w.client)
                .expect("write from a known client");
            done[node_tenant[c] as usize - 1] += 1;
        }
        done
    };
    let n: usize = totals.iter().sum();
    let mut shares: Option<Vec<u64>> = None;
    for k in 1..=n {
        cl.run_until_writes(k, 600_000);
        let done = done_per_tenant(&cl);
        if done.iter().zip(&totals).any(|(d, t)| d >= t) {
            break;
        }
        let m = cl.metrics_snapshot();
        let costs: Vec<u64> = (1..=tenants.len())
            .map(|t| counter(&m, &format!("tenant.{t}.cost_dispatched")))
            .collect();
        if costs.iter().sum::<u64>() > 0 {
            shares = Some(costs);
        }
    }
    let done = cl.run_until_writes(n, 600_000);
    assert_eq!(done, n, "fairness run must complete");
    let costs = shares.expect("sampled at least one mid-contention ledger");
    let cost_total: u64 = costs.iter().sum();
    let weight_total: u32 = tenants.iter().map(|&(w, _)| w).sum();

    let results = cl.results.borrow();
    assert!(results.writes.iter().all(|w| w.status == Status::Ok));
    let mut stats = Vec::new();
    for (i, &(weight, clients)) in tenants.iter().enumerate() {
        let t = i as u16 + 1;
        let mine: Vec<_> = results
            .writes
            .iter()
            .filter(|w| {
                let c = cl
                    .client_nodes
                    .iter()
                    .position(|&n| n == w.client)
                    .expect("known client");
                node_tenant[c] == t
            })
            .collect();
        let bytes: u64 = mine.iter().map(|w| w.size as u64).sum();
        let t0 = mine.iter().map(|w| w.start).min().unwrap();
        let t1 = mine.iter().map(|w| w.end).max().unwrap();
        let span_s = t1.since(t0).ps() as f64 / 1e12;
        let mut us: Vec<f64> = mine
            .iter()
            .map(|w| w.end.since(w.start).ps() as f64 / 1e6)
            .collect();
        let (mean, p99) = lat_us(&mut us);
        stats.push(TenantStat {
            tenant: t,
            weight,
            clients,
            writes: mine.len(),
            bytes,
            share_configured: weight as f64 / weight_total as f64,
            share_measured: costs[i] as f64 / cost_total.max(1) as f64,
            mean_us: mean,
            p99_us: p99,
            goodput_gbps: bytes as f64 / span_s.max(1e-12) / 1e9,
        });
    }
    // Weight-normalized goodput floor: a starved tenant drags this to 0.
    let norm: Vec<f64> = stats
        .iter()
        .map(|s| s.goodput_gbps / s.share_configured.max(1e-12))
        .collect();
    let min = norm.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = norm.iter().cloned().fold(0.0f64, f64::max);
    FairnessSection {
        tenants: stats,
        min_max_ratio: if max > 0.0 { min / max } else { 0.0 },
    }
}

pub fn run_sized(sizes: &Sizes) -> FlowControlReport {
    let mut scale = Vec::new();
    let mut snapshot_json = String::new();
    for &n in &sizes.scale_points {
        let (p, snap) = run_scale(n, sizes.scale_writes_per_client);
        snapshot_json = snap;
        scale.push(p);
    }
    let knee = scale
        .iter()
        .find(|p| p.clients >= 16)
        .or(scale.first())
        .copied()
        .unwrap_or_default();
    let last = scale.last().copied().unwrap_or_default();
    let scale_flatness = if knee.goodput_gbps > 0.0 {
        last.goodput_gbps / knee.goodput_gbps
    } else {
        0.0
    };
    FlowControlReport {
        scale,
        scale_flatness,
        // The starvation scenario: weight 4 on 2 clients vs weight 1
        // spread over 6 aggressor clients.
        weighted: run_fairness(&[(4, 2), (1, 6)], sizes.fair_writes_per_client),
        equal: run_fairness(
            &[(1, 2), (1, 2), (1, 2), (1, 2)],
            sizes.fair_writes_per_client,
        ),
        snapshot_json,
    }
}

pub fn run() -> FlowControlReport {
    run_sized(&Sizes::full())
}

pub fn run_smoke() -> FlowControlReport {
    run_sized(&Sizes::smoke())
}

pub fn render(r: &FlowControlReport) -> String {
    let mut t = Table::new(
        "flow_control — aggregate goodput vs client count (64 KiB RPC writes, 4 storage nodes)",
        &[
            "clients",
            "writes",
            "GB/s",
            "mean us",
            "p99 us",
            "credit-queued",
            "stalls",
        ],
    );
    for p in &r.scale {
        t.row(vec![
            p.clients.to_string(),
            p.writes.to_string(),
            f(p.goodput_gbps),
            f(p.mean_us),
            f(p.p99_us),
            p.queued.to_string(),
            p.stalls.to_string(),
        ]);
    }
    t.note(format!(
        "goodput at max scale is {:.2}x the saturation knee: overload lands in \
         the pending-WR queues, not on the floor",
        r.scale_flatness
    ));
    let mut out = t.render();
    for (name, s) in [("weighted", &r.weighted), ("equal", &r.equal)] {
        let mut t2 = Table::new(
            format!(
                "flow_control/{name} — per-tenant DRR fairness (1 storage node, rpc concurrency 1)"
            ),
            &[
                "tenant",
                "weight",
                "clients",
                "share conf",
                "share meas",
                "mean us",
                "p99 us",
                "GB/s",
            ],
        );
        for s in &s.tenants {
            t2.row(vec![
                s.tenant.to_string(),
                s.weight.to_string(),
                s.clients.to_string(),
                format!("{:.2}", s.share_configured),
                format!("{:.2}", s.share_measured),
                f(s.mean_us),
                f(s.p99_us),
                f(s.goodput_gbps),
            ]);
        }
        t2.note(format!(
            "weight-normalized min/max goodput ratio {:.2} (1.0 = perfectly fair)",
            s.min_max_ratio
        ));
        out.push('\n');
        out.push_str(&t2.render());
    }
    out
}

pub fn to_json(r: &FlowControlReport) -> String {
    let mut s = String::from("{\n  \"bench\": \"flow_control\",\n  \"scale\": [\n");
    for (i, p) in r.scale.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"clients\": {}, \"writes\": {}, \"bytes\": {}, \
             \"goodput_gbps\": {:.3}, \"mean_us\": {:.3}, \"p99_us\": {:.3}, \
             \"queued\": {}, \"stalls\": {}}}{}\n",
            p.clients,
            p.writes,
            p.bytes,
            p.goodput_gbps,
            p.mean_us,
            p.p99_us,
            p.queued,
            p.stalls,
            if i + 1 < r.scale.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"scale_flatness\": {:.4},\n",
        r.scale_flatness
    ));
    for (name, sec) in [("weighted", &r.weighted), ("equal", &r.equal)] {
        s.push_str(&format!("  \"{name}\": {{\n    \"tenants\": [\n"));
        for (i, t) in sec.tenants.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"tenant\": {}, \"weight\": {}, \"clients\": {}, \
                 \"writes\": {}, \"bytes\": {}, \"share_configured\": {:.4}, \
                 \"share_measured\": {:.4}, \"mean_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"goodput_gbps\": {:.3}}}{}\n",
                t.tenant,
                t.weight,
                t.clients,
                t.writes,
                t.bytes,
                t.share_configured,
                t.share_measured,
                t.mean_us,
                t.p99_us,
                t.goodput_gbps,
                if i + 1 < sec.tenants.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "    ],\n    \"min_max_ratio\": {:.4}\n  }},\n",
            sec.min_max_ratio
        ));
    }
    if r.snapshot_json.is_empty() {
        s.push_str("  \"metrics_snapshot\": null\n");
    } else {
        s.push_str(&format!("  \"metrics_snapshot\": {}\n", r.snapshot_json));
    }
    s.push_str("}\n");
    s
}

/// The CI smoke gate: the invariants the PR promises, asserted on a
/// report (the binary runs this on `--smoke`; tests run it too).
pub fn assert_invariants(r: &FlowControlReport) {
    let knee = r
        .scale
        .iter()
        .find(|p| p.clients >= 16)
        .or(r.scale.first())
        .expect("at least one scale point");
    let last = r.scale.last().expect("at least one scale point");
    if last.clients > knee.clients {
        assert!(
            (0.90..=1.15).contains(&r.scale_flatness),
            "aggregate goodput must stay flat past saturation: {:.2} GB/s at {} \
             clients vs {:.2} GB/s at {} clients (ratio {:.2})",
            last.goodput_gbps,
            last.clients,
            knee.goodput_gbps,
            knee.clients,
            r.scale_flatness
        );
    }
    assert!(
        last.queued > 0,
        "the largest scale point must exercise the pending-WR queue"
    );
    // The starvation promise: the protected (max-weight) tenant keeps
    // its configured share within 20% despite the aggressor's client
    // count; every other tenant still gets at least half its share (the
    // aggressor may legitimately soak up slack the protected tenant's
    // closed loop leaves behind).
    let protected = r
        .weighted
        .tenants
        .iter()
        .max_by_key(|t| t.weight)
        .expect("at least one tenant");
    let err =
        (protected.share_measured - protected.share_configured).abs() / protected.share_configured;
    assert!(
        err <= 0.20,
        "protected tenant {} mid-contention share {:.2} strays >20% from configured {:.2}",
        protected.tenant,
        protected.share_measured,
        protected.share_configured
    );
    for t in &r.weighted.tenants {
        assert!(
            t.share_measured >= t.share_configured * 0.5,
            "tenant {} starved: share {:.2} under half of configured {:.2}",
            t.tenant,
            t.share_measured,
            t.share_configured
        );
    }
    assert!(
        r.equal.min_max_ratio >= 0.6,
        "equal-weight tenants diverged: min/max goodput ratio {:.2} < 0.6",
        r.equal.min_max_ratio
    );
    for sec in [&r.weighted, &r.equal] {
        for t in &sec.tenants {
            assert!(
                t.p99_us > 0.0 && t.p99_us <= t.mean_us * 20.0,
                "tenant {} p99 unbounded: {:.1}us vs mean {:.1}us",
                t.tenant,
                t.p99_us,
                t.mean_us
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance bar at smoke size: goodput flat past the
    /// knee, the protected tenant holds its configured share within
    /// 20%, equal tenants stay within the fairness floor, p99 bounded.
    #[test]
    fn smoke_report_holds_the_flow_invariants() {
        let r = run_smoke();
        assert_invariants(&r);
        assert_eq!(r.weighted.tenants.len(), 2);
        assert!(
            r.weighted.tenants[0].mean_us < r.weighted.tenants[1].mean_us,
            "the weight-4 tenant must see lower mean latency than the aggressor"
        );
        let out = render(&r);
        assert!(out.contains("flow_control"));
        assert!(out.contains("weighted"));
        let json = to_json(&r);
        assert!(json.contains("\"bench\": \"flow_control\""));
        assert!(json.contains("\"share_measured\""));
        let v = nadfs_simnet::telemetry::json::parse(&json).expect("bench JSON parses");
        let snap = v.get("metrics_snapshot").expect("snapshot embedded");
        assert_eq!(
            snap.get("schema")
                .and_then(nadfs_simnet::telemetry::json::Json::as_str),
            Some(nadfs_simnet::SNAPSHOT_SCHEMA)
        );
    }
}
