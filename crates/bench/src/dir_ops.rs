//! Directory-operation benchmark (the zippynfs-style metadata workload).
//!
//! Runs the [`nadfs_core::MetaWorkload`] touch/stat/rename/rm storm
//! through the simulated cluster twice — client metadata cache on and off
//! — and reports per-op latencies plus the control-plane round-trip
//! ledger. The cached column is the headline: repeated path lookups stop
//! round-tripping to the control node.

use nadfs_core::{ClusterSpec, LayoutSpec, MetaOpKind, MetaWorkload, SimCluster, StorageMode};

use crate::report::{f, Table};

const KINDS: [(MetaOpKind, &str); 6] = [
    (MetaOpKind::Mkdir, "mkdir"),
    (MetaOpKind::Create, "create"),
    (MetaOpKind::Lookup, "stat"),
    (MetaOpKind::Rename, "rename"),
    (MetaOpKind::Unlink, "unlink"),
    (MetaOpKind::Readdir, "readdir"),
];

struct RunStats {
    /// (mean_us, p99_us, count) per op kind, in `KINDS` order.
    ops: Vec<(f64, f64, usize)>,
    control_rpcs: u64,
    cache_hits: u64,
    cache_hit_rate: f64,
}

fn run(n_clients: usize, cache_enabled: bool) -> RunStats {
    let spec = ClusterSpec::new(n_clients, 4, StorageMode::Plain);
    let mut cl = SimCluster::build_with(spec, |app| {
        app.cache_enabled = cache_enabled;
        // One bulk span per storm instead of one per op: keeps the
        // completed-span ring from saturating during the storm phase.
        app.bulk_meta_spans = true;
    });
    let w = MetaWorkload::new("/bench")
        .with_dirs(4, 16)
        .with_storm(256)
        .with_layout(LayoutSpec::striped(2, 64 << 10))
        .with_seed(7);
    w.prepare(&cl.control);
    let mut n = 0;
    for c in 0..n_clients {
        for j in w.jobs_for_client(c) {
            cl.submit(c, j);
            n += 1;
        }
    }
    cl.start();
    let done = cl.run_until_metas(n, 60_000);
    assert_eq!(done, n, "metadata storm must complete");

    let results = cl.results.borrow();
    let ops = KINDS
        .iter()
        .map(|&(kind, _)| {
            let mut us: Vec<f64> = results
                .metas
                .iter()
                .filter(|m| m.op == kind)
                .map(|m| m.end.since(m.start).ps() as f64 / 1e6)
                .collect();
            us.sort_by(|a, b| a.partial_cmp(b).unwrap());
            if us.is_empty() {
                return (0.0, 0.0, 0);
            }
            let mean = us.iter().sum::<f64>() / us.len() as f64;
            let p99 = us[(us.len() - 1).min(us.len() * 99 / 100)];
            (mean, p99, us.len())
        })
        .collect();
    let control_rpcs = cl.control.borrow().meta.stats.total();
    let (hits, misses) = cl.client_caches.iter().fold((0u64, 0u64), |(h, m), c| {
        let s = c.borrow().stats;
        (h + s.hits, m + s.misses)
    });
    RunStats {
        ops,
        control_rpcs,
        cache_hits: hits,
        cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
    }
}

/// The `dir_ops` table: latency per directory operation, cached vs
/// uncached, plus the round-trip ledger.
pub fn dir_ops() -> String {
    let n_clients = 2;
    let cold = run(n_clients, false);
    let warm = run(n_clients, true);

    let mut t = Table::new(
        "dir_ops — directory-operation latency, client metadata cache off/on (us)",
        &[
            "op",
            "count",
            "uncached mean",
            "uncached p99",
            "cached mean",
            "cached p99",
            "speedup",
        ],
    );
    for (i, &(_, name)) in KINDS.iter().enumerate() {
        let (cm, cp, cnt) = cold.ops[i];
        let (wm, wp, _) = warm.ops[i];
        t.row(vec![
            name.to_string(),
            cnt.to_string(),
            f(cm),
            f(cp),
            f(wm),
            f(wp),
            if wm > 0.0 {
                format!("{:.1}x", cm / wm)
            } else {
                "-".to_string()
            },
        ]);
    }
    t.note(format!(
        "control-plane round-trips: {} uncached vs {} cached ({} cache hits, {:.0}% hit rate)",
        cold.control_rpcs,
        warm.control_rpcs,
        warm.cache_hits,
        warm.cache_hit_rate * 100.0
    ));
    t.note(
        "workload: per-client subtree, 4 dirs x 16 files, 256-stat skewed storm, \
         25% renamed, 25% unlinked (zippynfs-style dir-ops mix)",
    );
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_ops_renders_and_cache_wins() {
        let out = dir_ops();
        assert!(out.contains("stat"));
        assert!(out.contains("cache hits"));
        // The cached stat mean must beat the uncached one.
        let cold = run(1, false);
        let warm = run(1, true);
        let stat = KINDS
            .iter()
            .position(|&(k, _)| k == MetaOpKind::Lookup)
            .unwrap();
        assert!(warm.ops[stat].0 < cold.ops[stat].0);
        assert!(warm.control_rpcs < cold.control_rpcs);
    }
}
