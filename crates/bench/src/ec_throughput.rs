//! Erasure-coding data-path throughput: old vs new kernels, and the
//! per-packet streaming loop with and without buffer pooling.
//!
//! Four sections:
//!
//! 1. **mul_acc kernel** — the seed byte-at-a-time table walk
//!    (`gf256::scalar`) against the wide-word shuffle kernel
//!    (`gf256::mul_acc_slice`), GB/s over a 1 MiB slice.
//! 2. **block encode** — the seed per-row encode (fresh parity
//!    allocations, one full pass per parity row) against the fused
//!    `encode_into` (cached rows, tiled multi-row accumulation, reused
//!    buffers), MB/s of source data.
//! 3. **repair** — degraded-read reconstruction: the allocate-and-clone
//!    `reconstruct` discipline against `reconstruct_into` (survivor
//!    refs, reused output buffers, cached decode matrix), MB/s of
//!    recovered shards.
//! 4. **stream loop** — the per-packet TriEC path (intermediate parity
//!    multiply at the data node, XOR aggregation at the parity node) with
//!    the seed's allocate-per-packet discipline against the pooled
//!    zero-alloc discipline, packets/s. The pooled loop's steady-state
//!    pool misses are reported — and asserted zero by the tests — which is
//!    the "no allocator on the packet path" property every later data-path
//!    PR must preserve.
//!
//! `cargo run --release --bin ec_throughput` prints the table and writes
//! `BENCH_ec_throughput.json` into the working directory, seeding the
//! bench JSON trajectory future PRs compare against.

use std::time::Instant;

use nadfs_gfec::{gf256, intermediate_parity_into, Accumulator, ReedSolomon};
use nadfs_simnet::BufPool;

use crate::report::{f, Table};

/// One old-vs-new measurement.
#[derive(Clone, Debug)]
pub struct Pair {
    pub label: String,
    /// Throughput unit for `old`/`new` (e.g. "MB/s", "kpkt/s").
    pub unit: &'static str,
    pub old: f64,
    pub new: f64,
}

impl Pair {
    pub fn speedup(&self) -> f64 {
        if self.old > 0.0 {
            self.new / self.old
        } else {
            f64::INFINITY
        }
    }
}

/// Full report of the `ec_throughput` run.
#[derive(Clone, Debug)]
pub struct EcThroughputReport {
    pub pairs: Vec<Pair>,
    /// Pool hit rate of the steady-state (post-warmup) pooled stream loop.
    pub pool_hit_rate: f64,
    /// Fresh allocations the pooled stream loop performed in steady state
    /// (pool misses). The acceptance bar is zero.
    pub steady_state_pool_misses: u64,
    /// Packets pushed through the steady-state pooled loop.
    pub steady_state_packets: u64,
}

/// Time `f` over enough repetitions to exceed ~80 ms, returning seconds
/// per call (mean of the best half to shave scheduler noise).
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm tables, caches, pools
    let mut reps = 1u32;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt > 0.08 || reps >= 1 << 20 {
            return dt / reps as f64;
        }
        let target = (0.1 / dt.max(1e-9)).ceil();
        reps = (reps as f64 * target).min(1_048_576.0) as u32;
    }
}

/// Section 1: raw mul_acc kernel, seed scalar vs wide-word.
fn bench_mul_acc(pairs: &mut Vec<Pair>) {
    let n = 1 << 20;
    let src: Vec<u8> = (0..n).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst = vec![0u8; n];
    let c = 0x1D;
    let t_old = time_per_call(|| {
        gf256::scalar::mul_acc_slice(
            c,
            std::hint::black_box(&src),
            std::hint::black_box(&mut dst),
        )
    });
    let t_new = time_per_call(|| {
        gf256::mul_acc_slice(
            c,
            std::hint::black_box(&src),
            std::hint::black_box(&mut dst),
        )
    });
    pairs.push(Pair {
        label: "mul_acc_slice 1MiB (GB/s)".into(),
        unit: "GB/s",
        old: n as f64 / t_old / 1e9,
        new: n as f64 / t_new / 1e9,
    });
}

/// The seed encode: one full pass per parity row, scalar kernel, fresh
/// parity allocations — reproduced here as the baseline.
fn seed_encode(rs: &ReedSolomon, data: &[&[u8]]) -> Vec<Vec<u8>> {
    let n = data[0].len();
    let mut parities = vec![vec![0u8; n]; rs.m()];
    for (p, parity) in parities.iter_mut().enumerate() {
        for (j, chunk) in data.iter().enumerate() {
            gf256::scalar::mul_acc_slice(rs.parity_coef(p, j), chunk, parity);
        }
    }
    parities
}

/// Section 2: block encode, seed per-row vs fused.
fn bench_block_encode(pairs: &mut Vec<Pair>, k: usize, m: usize, chunk_len: usize) {
    let rs = ReedSolomon::new(k, m).expect("params");
    let chunks: Vec<Vec<u8>> = (0..k)
        .map(|j| {
            (0..chunk_len)
                .map(|i| ((i * 7 + j * 13) % 251) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    let src_bytes = (k * chunk_len) as f64;

    let t_old = time_per_call(|| {
        std::hint::black_box(seed_encode(&rs, std::hint::black_box(&refs)));
    });
    let mut parities: Vec<Vec<u8>> = vec![Vec::new(); m];
    let t_new = time_per_call(|| {
        rs.encode_into(
            std::hint::black_box(&refs),
            std::hint::black_box(&mut parities),
        )
        .expect("encode");
    });
    // Cross-check while we're here: the measured paths must agree.
    assert_eq!(seed_encode(&rs, &refs), parities, "fused == per-row");
    pairs.push(Pair {
        label: format!("rs({k},{m}) encode {}KiB chunks (MB/s)", chunk_len >> 10),
        unit: "MB/s",
        old: src_bytes / t_old / 1e6,
        new: src_bytes / t_new / 1e6,
    });
}

/// Section 4: repair (degraded-read reconstruction), the seed's
/// allocate-and-clone `reconstruct` discipline against `reconstruct_into`
/// with reused output buffers and survivor references. Throughput is
/// recovered bytes per second.
fn bench_repair(pairs: &mut Vec<Pair>, k: usize, m: usize, chunk_len: usize) {
    let rs = ReedSolomon::new(k, m).expect("params");
    let chunks: Vec<Vec<u8>> = (0..k)
        .map(|j| {
            (0..chunk_len)
                .map(|i| ((i * 13 + j * 29) % 251) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    let parities = rs.encode(&refs).expect("encode");
    let full: Vec<Vec<u8>> = chunks.iter().cloned().chain(parities).collect();
    // Erase one data and one parity shard — the common repair shape.
    let missing = [0usize, k];
    let recovered_bytes = (missing.len() * chunk_len) as f64;

    // Old discipline: clone every survivor into an Option vec (what a
    // naive repair loop does each round), reconstruct in place.
    let t_old = time_per_call(|| {
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &i in &missing {
            shards[i] = None;
        }
        rs.reconstruct(std::hint::black_box(&mut shards))
            .expect("reconstruct");
        std::hint::black_box(&shards);
    });

    // New discipline: survivor refs, reused output buffers — no per-round
    // allocation at all.
    let shards: Vec<Option<&[u8]>> = full
        .iter()
        .enumerate()
        .map(|(i, s)| (!missing.contains(&i)).then_some(s.as_slice()))
        .collect();
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); missing.len()];
    let t_new = time_per_call(|| {
        rs.reconstruct_into(
            std::hint::black_box(&shards),
            &missing,
            std::hint::black_box(&mut out),
        )
        .expect("reconstruct_into");
    });
    for (o, &i) in out.iter().zip(&missing) {
        assert_eq!(o, &full[i], "repair paths must agree");
    }
    pairs.push(Pair {
        label: format!("rs({k},{m}) repair 2 shards {}KiB (MB/s)", chunk_len >> 10),
        unit: "MB/s",
        old: recovered_bytes / t_old / 1e6,
        new: recovered_bytes / t_new / 1e6,
    });
}

/// Streaming-path parameters shared by the old and new loops.
struct StreamSetup {
    rs: ReedSolomon,
    chunks: Vec<Vec<u8>>,
    mtu: usize,
    n_pkts: usize,
}

impl StreamSetup {
    fn new(k: usize, m: usize, chunk_len: usize, mtu: usize) -> StreamSetup {
        let rs = ReedSolomon::new(k, m).expect("params");
        let chunks: Vec<Vec<u8>> = (0..k)
            .map(|j| {
                (0..chunk_len)
                    .map(|i| ((i * 11 + j * 17) % 253) as u8)
                    .collect()
            })
            .collect();
        StreamSetup {
            rs,
            chunks,
            mtu,
            n_pkts: chunk_len.div_ceil(mtu),
        }
    }

    /// Intermediate-parity packets per full stripe encode.
    fn pkts_per_stripe(&self) -> u64 {
        (self.rs.k() * self.rs.m() * self.n_pkts) as u64
    }

    /// Seed discipline: scalar byte-table multiply into a fresh `Vec` per
    /// packet, a fresh accumulator per aggregation sequence.
    fn run_alloc(&self, sink: &mut u64) {
        for p in 0..self.rs.m() {
            for i in 0..self.n_pkts {
                let mut accbuf = vec![0u8; self.mtu];
                for (j, chunk) in self.chunks.iter().enumerate() {
                    let pkt = &chunk[i * self.mtu..((i + 1) * self.mtu).min(chunk.len())];
                    let mut ipar = vec![0u8; pkt.len()];
                    gf256::scalar::mul_slice(self.rs.parity_coef(p, j), pkt, &mut ipar);
                    gf256::scalar::xor_slice(&ipar, &mut accbuf[..ipar.len()]);
                }
                *sink ^= accbuf[0] as u64;
            }
        }
    }

    /// Pooled discipline: intermediate parities and accumulators draw from
    /// the ring and return to it — zero allocations once warm.
    fn run_pooled(&self, pool: &mut BufPool, sink: &mut u64) {
        for p in 0..self.rs.m() {
            for i in 0..self.n_pkts {
                let mut acc = Accumulator::with_buf(pool.get_dirty(self.mtu), self.rs.k() as u32);
                let mut ipar = pool.get_dirty(self.mtu);
                for (j, chunk) in self.chunks.iter().enumerate() {
                    let pkt = &chunk[i * self.mtu..((i + 1) * self.mtu).min(chunk.len())];
                    intermediate_parity_into(self.rs.parity_coef(p, j), pkt, &mut ipar);
                    acc.absorb(&ipar);
                }
                *sink ^= acc.finish(1)[0] as u64;
                pool.put(ipar);
                pool.put(acc.into_buf());
            }
        }
    }
}

/// Section 3: the per-packet stream loop, alloc-per-packet vs pooled.
fn bench_stream(pairs: &mut Vec<Pair>) -> (f64, u64, u64) {
    let s = StreamSetup::new(6, 3, 64 << 10, 1978);
    let mut sink = 0u64;

    let t_old = time_per_call(|| s.run_alloc(&mut sink));

    let mut pool = BufPool::new(64);
    // Warm the ring, then measure the steady state only.
    s.run_pooled(&mut pool, &mut sink);
    pool.reset_stats();
    let mut stripes = 0u64;
    let t_new = time_per_call(|| {
        s.run_pooled(&mut pool, &mut sink);
        stripes += 1;
    });
    std::hint::black_box(sink);
    let stats = pool.stats();
    let pkts = s.pkts_per_stripe() as f64;
    pairs.push(Pair {
        label: "stream rs(6,3) 64KiB stripes (kpkt/s)".into(),
        unit: "kpkt/s",
        old: pkts / t_old / 1e3,
        new: pkts / t_new / 1e3,
    });
    (
        stats.hit_rate(),
        stats.misses,
        stripes * s.pkts_per_stripe(),
    )
}

/// Run every section.
pub fn run() -> EcThroughputReport {
    let mut pairs = Vec::new();
    bench_mul_acc(&mut pairs);
    bench_block_encode(&mut pairs, 3, 2, 1 << 20);
    bench_block_encode(&mut pairs, 6, 3, 1 << 20);
    bench_repair(&mut pairs, 6, 3, 1 << 20);
    let (pool_hit_rate, steady_state_pool_misses, steady_state_packets) = bench_stream(&mut pairs);
    EcThroughputReport {
        pairs,
        pool_hit_rate,
        steady_state_pool_misses,
        steady_state_packets,
    }
}

/// Render the report as the repo's standard text table.
pub fn render(r: &EcThroughputReport) -> String {
    let mut t = Table::new(
        "ec_throughput — EC data path, seed kernels vs wide-word + pooled",
        &["section", "old", "new", "unit", "speedup"],
    );
    for p in &r.pairs {
        t.row(vec![
            p.label.clone(),
            f(p.old),
            f(p.new),
            p.unit.to_string(),
            format!("{}x", f(p.speedup())),
        ]);
    }
    t.note(format!(
        "pooled stream loop steady state: {} packets, {} pool misses (hit rate {:.3})",
        r.steady_state_packets, r.steady_state_pool_misses, r.pool_hit_rate
    ));
    t.note("old = seed byte-table kernels + per-packet Vec allocation");
    t.note("new = SSSE3/AVX2 nibble-shuffle kernels, fused tiled encode, recycled BufPool");
    t.render()
}

/// Serialize the report as the `BENCH_ec_throughput.json` trajectory entry.
pub fn to_json(r: &EcThroughputReport) -> String {
    let mut s = String::from("{\n  \"bench\": \"ec_throughput\",\n  \"sections\": [\n");
    for (i, p) in r.pairs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"unit\": \"{}\", \"old\": {:.2}, \"new\": {:.2}, \"speedup\": {:.2}}}{}\n",
            p.label,
            p.unit,
            p.old,
            p.new,
            p.speedup(),
            if i + 1 < r.pairs.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"stream_pool\": {{\"hit_rate\": {:.4}, \"steady_state_misses\": {}, \"steady_state_packets\": {}}}\n}}\n",
        r.pool_hit_rate, r.steady_state_pool_misses, r.steady_state_packets
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_stream_loop_is_allocation_free_in_steady_state() {
        let s = StreamSetup::new(3, 2, 8 << 10, 1024);
        let mut pool = BufPool::new(16);
        let mut sink = 0u64;
        s.run_pooled(&mut pool, &mut sink); // warmup
        pool.reset_stats();
        for _ in 0..5 {
            s.run_pooled(&mut pool, &mut sink);
        }
        let st = pool.stats();
        assert_eq!(st.misses, 0, "steady-state stream loop must not allocate");
        assert_eq!(st.hit_rate(), 1.0);
        assert!(st.gets > 0);
    }

    #[test]
    fn pooled_and_alloc_loops_compute_identical_parities() {
        use nadfs_gfec::intermediate_parity;
        // Same stripe, both disciplines, byte-identical aggregation.
        let s = StreamSetup::new(4, 2, 4 << 10, 600);
        let mut pool = BufPool::new(16);
        for p in 0..s.rs.m() {
            for i in 0..s.n_pkts {
                let mut a_old = Accumulator::new(s.mtu, s.rs.k() as u32);
                let mut a_new = Accumulator::with_buf(pool.get(s.mtu), s.rs.k() as u32);
                let mut ipar = pool.get(s.mtu);
                for (j, chunk) in s.chunks.iter().enumerate() {
                    let pkt = &chunk[i * s.mtu..((i + 1) * s.mtu).min(chunk.len())];
                    a_old.absorb(&intermediate_parity(s.rs.parity_coef(p, j), pkt));
                    intermediate_parity_into(s.rs.parity_coef(p, j), pkt, &mut ipar);
                    a_new.absorb(&ipar);
                }
                let len = s.chunks[0][i * s.mtu..].len().min(s.mtu);
                assert_eq!(a_old.finish(len), a_new.finish(len), "p={p} i={i}");
                pool.put(ipar);
                pool.put(a_new.into_buf());
            }
        }
    }

    #[test]
    fn json_shape_is_sane() {
        let r = EcThroughputReport {
            pairs: vec![Pair {
                label: "x".into(),
                unit: "MB/s",
                old: 1.0,
                new: 3.5,
            }],
            pool_hit_rate: 1.0,
            steady_state_pool_misses: 0,
            steady_state_packets: 42,
        };
        let j = to_json(&r);
        assert!(j.contains("\"bench\": \"ec_throughput\""));
        assert!(j.contains("\"speedup\": 3.50"));
        assert!(j.contains("\"steady_state_misses\": 0"));
        assert!(render(&r).contains("ec_throughput"));
    }
}
