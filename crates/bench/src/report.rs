//! Plain-text table rendering for the figure harnesses.

/// A simple aligned text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.min(120)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Format a float with sensible precision for table cells.
pub fn f(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Human-readable size label for a byte count.
pub fn sz(bytes: u32) -> String {
    if bytes >= (1 << 20) && bytes.is_multiple_of(1 << 20) {
        format!("{}MiB", bytes >> 20)
    } else if bytes >= (1 << 10) {
        format!("{}KiB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("demo", &["a", "long-col"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-col"));
        assert!(r.contains("note: hello"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(1.234), "1.23");
        assert_eq!(f(f64::NAN), "-");
    }

    #[test]
    fn size_labels() {
        assert_eq!(sz(1024), "1KiB");
        assert_eq!(sz(1 << 20), "1MiB");
        assert_eq!(sz(100), "100B");
    }
}
