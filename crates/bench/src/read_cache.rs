//! Client read-cache benchmark: `read_at` latency/throughput with the
//! generation-keyed cache + readahead on vs off, over the two read
//! patterns that matter for a cache — a sequential scan (readahead's
//! case) and a zipfian hot set (reuse's case).
//!
//! The uncached column pays the full pipeline per read: one control-plane
//! resolve plus the per-stripe fan-out of NIC-validated one-sided reads.
//! The cached column absorbs repeats and readahead-covered ranges in
//! client memory; the control-RPC ledger (`MetaOpStats::resolves`) shows
//! the round-trips that disappeared.

use nadfs_core::{
    ClusterSpec, FilePolicy, Job, ReadPattern, ReadProtocol, SimCluster, SizeDist, StorageMode,
    Workload, WriteProtocol,
};
use nadfs_wire::RsScheme;

use crate::report::{f, Table};

/// Reads per pattern (sequential = two full passes over the file).
const WRITES: usize = 64;
const BLOCK: u32 = 64 << 10;
const SEQ_READS: usize = 2 * WRITES;
const ZIPF_READS: usize = 256;

/// One (pattern, cache on/off) measurement.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    pub reads: usize,
    pub bytes: u64,
    pub mean_us: f64,
    pub p99_us: f64,
    /// Bytes served over the simulated span of the read phase.
    pub gbps: f64,
    /// Control-plane read resolves the phase cost.
    pub resolves: u64,
    pub hit_rate: f64,
    pub readahead_bytes: u64,
    /// Mean latency of the completions served from cache (0 when none
    /// were — e.g. the uncached baseline).
    pub hit_mean_us: f64,
}

/// Cached-vs-uncached comparison for one read pattern.
#[derive(Clone, Copy, Debug)]
pub struct PatternStats {
    pub pattern: &'static str,
    pub uncached: RunStats,
    pub cached: RunStats,
}

impl PatternStats {
    /// Mean-latency improvement of the cached run (misses, with their
    /// readahead overfetch, included).
    pub fn speedup(&self) -> f64 {
        if self.cached.mean_us > 0.0 {
            self.uncached.mean_us / self.cached.mean_us
        } else {
            0.0
        }
    }

    /// Latency improvement of a cache *hit* over the uncached path (the
    /// paper-style headline: what a hot read costs with and without the
    /// cache).
    pub fn hit_speedup(&self) -> f64 {
        if self.cached.hit_mean_us > 0.0 {
            self.uncached.mean_us / self.cached.hit_mean_us
        } else {
            0.0
        }
    }

    /// Fraction of per-read control round-trips the cache removed.
    pub fn rpc_reduction(&self) -> f64 {
        if self.uncached.resolves == 0 {
            0.0
        } else {
            1.0 - self.cached.resolves as f64 / self.uncached.resolves as f64
        }
    }
}

/// One uncached sequential scan of the EC file under one read protocol,
/// with the read-phase counter movement that proves *where* the work ran.
#[derive(Clone, Copy, Debug, Default)]
pub struct OffloadRun {
    pub reads: usize,
    pub bytes: u64,
    pub mean_us: f64,
    pub p99_us: f64,
    pub gbps: f64,
    /// Client-side stripe reconstructions (`reconstruct_into` on the
    /// host) during the read phase — must be 0 in the offloaded config.
    pub client_reconstructs: u64,
    /// Stripes rebuilt by storage-NIC EC engines during the read phase.
    pub nic_reconstructs: u64,
    /// Bytes pushed by gather responders (0 for the CPU fan-out).
    pub gather_bytes_streamed: u64,
}

/// CPU fan-out vs NIC gather streaming, healthy and degraded.
#[derive(Clone, Copy, Debug, Default)]
pub struct OffloadSection {
    pub cpu: OffloadRun,
    pub offloaded: OffloadRun,
    pub degraded_cpu: OffloadRun,
    pub degraded_offloaded: OffloadRun,
}

impl OffloadSection {
    /// Mean-latency win of gather streaming over the CPU fan-out on the
    /// healthy sequential scan.
    pub fn speedup(&self) -> f64 {
        if self.offloaded.mean_us > 0.0 {
            self.cpu.mean_us / self.offloaded.mean_us
        } else {
            0.0
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct ReadCacheReport {
    pub sections: Vec<PatternStats>,
    /// Read-side NIC offload: gather streaming vs client fan-out.
    pub offload: Option<OffloadSection>,
    /// `nadfs-metrics-v1` snapshot of the final cached run, embedded in
    /// the bench JSON so a regression diff carries the full component
    /// picture (cache counters, per-phase op latencies, engine totals).
    pub snapshot_json: String,
}

fn run_one(pattern: ReadPattern, reads: usize, cache_on: bool) -> (RunStats, String) {
    let spec = ClusterSpec::new(1, 4, StorageMode::Spin);
    let mut cl = SimCluster::build_with(spec, |app| app.read_cache_enabled = cache_on);
    let file = cl.control.borrow_mut().create_file(0, FilePolicy::Plain);
    let w = Workload::new(file.id, WriteProtocol::Spin, SizeDist::Fixed(BLOCK))
        .with_writes(WRITES)
        .with_reads(reads, ReadProtocol::Rdma)
        .with_read_pattern(pattern)
        .with_seed(0xCACE);
    for job in w.jobs_for_client(0) {
        cl.submit(0, job);
    }
    cl.start();
    assert_eq!(cl.run_until_writes(WRITES, 60_000), WRITES, "write phase");
    // Drop the write-through fills so the read phase measures the cache
    // from cold (miss → readahead → hit), not read-after-write reuse.
    cl.read_caches[0].borrow_mut().clear();
    assert_eq!(cl.run_until_file_reads(reads, 60_000), reads, "read phase");

    let (mean, p99, bytes, span_s, hit_mean) = {
        let results = cl.results.borrow();
        let mut us: Vec<f64> = results
            .file_reads
            .iter()
            .map(|r| r.end.since(r.start).ps() as f64 / 1e6)
            .collect();
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = us.iter().sum::<f64>() / us.len().max(1) as f64;
        let p99 = us[(us.len() - 1).min(us.len() * 99 / 100)];
        let bytes: u64 = results.file_reads.iter().map(|r| r.len as u64).sum();
        let t0 = results.file_reads.iter().map(|r| r.start).min().unwrap();
        let t1 = results.file_reads.iter().map(|r| r.end).max().unwrap();
        let hits_us: Vec<f64> = results
            .file_reads
            .iter()
            .filter(|r| r.from_cache)
            .map(|r| r.end.since(r.start).ps() as f64 / 1e6)
            .collect();
        let hit_mean = if hits_us.is_empty() {
            0.0
        } else {
            hits_us.iter().sum::<f64>() / hits_us.len() as f64
        };
        (mean, p99, bytes, t1.since(t0).ps() as f64 / 1e12, hit_mean)
    };
    let stats = cl.read_caches[0].borrow().stats;
    // Writes never call resolve_read, so the whole-run resolve count is
    // the read phase's control-RPC bill.
    let resolves = cl.control.borrow().meta.stats.resolves;
    let snapshot = cl.metrics_snapshot().to_json_indented(2);
    let run = RunStats {
        reads,
        bytes,
        mean_us: mean,
        p99_us: p99,
        gbps: bytes as f64 / span_s.max(1e-12) / 1e9,
        resolves,
        hit_rate: stats.hit_rate(),
        readahead_bytes: stats.readahead_bytes,
        hit_mean_us: hit_mean,
    };
    (run, snapshot)
}

/// One uncached sequential scan over an erasure-coded file under
/// `protocol`, optionally with a data node killed after the write phase.
/// The read-phase counter movement comes from a [`MetricsSnapshot`]
/// delta bracketing the reads, so write-phase noise cancels out.
fn run_offload(protocol: ReadProtocol, degraded: bool) -> OffloadRun {
    let scheme = RsScheme::new(3, 2);
    let spec = ClusterSpec::new(1, 6, StorageMode::Spin);
    // Uncached scans: the cache would hide where the read work runs.
    let mut cl = SimCluster::build_with(spec, |app| app.read_cache_enabled = false);
    let file = cl
        .control
        .borrow_mut()
        .create_file(0, FilePolicy::ErasureCoded { scheme });
    let w = Workload::new(
        file.id,
        WriteProtocol::SpinTriec { interleave: true },
        SizeDist::Fixed(BLOCK),
    )
    .with_writes(WRITES)
    .with_reads(WRITES, protocol)
    .with_read_pattern(ReadPattern::Sequential)
    .with_seed(0x0FF1);
    // Two-phase submission: queueing everything up front would let the
    // client's issue window race the scan's first reads against the tail
    // writes (legal zero-filled holes — but they'd dodge the gather path
    // and skew the comparison).
    let (writes, reads): (Vec<Job>, Vec<Job>) = w
        .jobs_for_client(0)
        .into_iter()
        .partition(|j| matches!(j, Job::Write { .. }));
    for job in writes {
        cl.submit(0, job);
    }
    cl.start();
    assert_eq!(cl.run_until_writes(WRITES, 60_000), WRITES, "write phase");
    if degraded {
        let victim = cl.results.borrow().writes[0].placement.data_chunks[0].node;
        cl.control.borrow_mut().mark_node_failed(victim);
    }
    let before = cl.metrics_snapshot();
    for job in reads {
        cl.submit(0, job);
    }
    cl.start();
    assert_eq!(
        cl.run_until_file_reads(WRITES, 60_000),
        WRITES,
        "read phase"
    );
    let delta = cl.metrics_snapshot().delta(&before);

    let (mean, p99, bytes, span_s) = {
        let results = cl.results.borrow();
        let mut us: Vec<f64> = results
            .file_reads
            .iter()
            .map(|r| r.end.since(r.start).ps() as f64 / 1e6)
            .collect();
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = us.iter().sum::<f64>() / us.len().max(1) as f64;
        let p99 = us[(us.len() - 1).min(us.len() * 99 / 100)];
        let bytes: u64 = results.file_reads.iter().map(|r| r.len as u64).sum();
        let t0 = results.file_reads.iter().map(|r| r.start).min().unwrap();
        let t1 = results.file_reads.iter().map(|r| r.end).max().unwrap();
        (mean, p99, bytes, t1.since(t0).ps() as f64 / 1e12)
    };
    let nic_sum = |suffix: &str| -> u64 {
        (0..6)
            .filter_map(|i| delta.counter(&format!("nic.{i}.gather.{suffix}")))
            .sum()
    };
    OffloadRun {
        reads: WRITES,
        bytes,
        mean_us: mean,
        p99_us: p99,
        gbps: bytes as f64 / span_s.max(1e-12) / 1e9,
        client_reconstructs: delta
            .counter("client.0.read.reconstructed_stripes")
            .unwrap_or(0),
        nic_reconstructs: nic_sum("chunks_reconstructed"),
        gather_bytes_streamed: nic_sum("bytes_streamed"),
    }
}

fn run_offload_section() -> OffloadSection {
    OffloadSection {
        cpu: run_offload(ReadProtocol::Rpc, false),
        offloaded: run_offload(ReadProtocol::Offloaded, false),
        degraded_cpu: run_offload(ReadProtocol::Rdma, true),
        degraded_offloaded: run_offload(ReadProtocol::Offloaded, true),
    }
}

fn run_pattern(name: &'static str, pattern: ReadPattern, reads: usize) -> (PatternStats, String) {
    let (uncached, _) = run_one(pattern, reads, false);
    let (cached, snapshot) = run_one(pattern, reads, true);
    (
        PatternStats {
            pattern: name,
            uncached,
            cached,
        },
        snapshot,
    )
}

pub fn run() -> ReadCacheReport {
    let (seq, _) = run_pattern("sequential", ReadPattern::Sequential, SEQ_READS);
    let (zipf, snapshot_json) = run_pattern(
        "zipfian",
        ReadPattern::Zipfian { exponent: 2.0 },
        ZIPF_READS,
    );
    ReadCacheReport {
        sections: vec![seq, zipf],
        offload: Some(run_offload_section()),
        snapshot_json,
    }
}

pub fn render(r: &ReadCacheReport) -> String {
    let mut t = Table::new(
        "read_cache — client read cache + readahead, off/on (64 KiB reads)",
        &[
            "pattern",
            "reads",
            "uncached mean us",
            "uncached GB/s",
            "cached mean us",
            "cached GB/s",
            "speedup",
            "hit mean us",
            "hit speedup",
            "hit rate",
            "resolve RPCs off/on",
        ],
    );
    for s in &r.sections {
        t.row(vec![
            s.pattern.to_string(),
            s.uncached.reads.to_string(),
            f(s.uncached.mean_us),
            f(s.uncached.gbps),
            f(s.cached.mean_us),
            f(s.cached.gbps),
            format!("{:.1}x", s.speedup()),
            f(s.cached.hit_mean_us),
            format!("{:.1}x", s.hit_speedup()),
            format!("{:.0}%", s.cached.hit_rate * 100.0),
            format!(
                "{}/{} (-{:.0}%)",
                s.uncached.resolves,
                s.cached.resolves,
                s.rpc_reduction() * 100.0
            ),
        ]);
    }
    t.note(format!(
        "file: {} MiB striped workload; sequential = two full passes; \
         zipfian exponent 2.0 (hot prefix)",
        (WRITES as u32 * BLOCK) >> 20
    ));
    t.note(
        "cache hits skip the control-plane resolve AND the per-stripe \
         fan-out; misses overfetch a ramping readahead window on \
         sequential streams",
    );
    let mut out = t.render();
    if let Some(o) = &r.offload {
        let mut t2 = Table::new(
            "offloaded_read — NIC gather streaming vs CPU fan-out \
             (uncached sequential scan, EC 3+2)",
            &[
                "config",
                "mean us",
                "p99 us",
                "GB/s",
                "client reconstructs",
                "NIC reconstructs",
                "gather bytes",
            ],
        );
        for (name, run) in [
            ("cpu fan-out", &o.cpu),
            ("offloaded", &o.offloaded),
            ("degraded cpu", &o.degraded_cpu),
            ("degraded offloaded", &o.degraded_offloaded),
        ] {
            t2.row(vec![
                name.to_string(),
                f(run.mean_us),
                f(run.p99_us),
                f(run.gbps),
                run.client_reconstructs.to_string(),
                run.nic_reconstructs.to_string(),
                run.gather_bytes_streamed.to_string(),
            ]);
        }
        t2.note(format!(
            "gather streaming is {:.1}x the CPU fan-out's mean latency; \
             degraded offloaded reads reconstruct on the storage NIC's EC \
             engine (client reconstructs = 0)",
            o.speedup()
        ));
        out.push('\n');
        out.push_str(&t2.render());
    }
    out
}

pub fn to_json(r: &ReadCacheReport) -> String {
    let mut s = String::from("{\n  \"bench\": \"read_cache\",\n  \"sections\": [\n");
    for (i, p) in r.sections.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"reads\": {}, \
             \"uncached_mean_us\": {:.3}, \"uncached_p99_us\": {:.3}, \"uncached_gbps\": {:.3}, \
             \"cached_mean_us\": {:.3}, \"cached_p99_us\": {:.3}, \"cached_gbps\": {:.3}, \
             \"speedup\": {:.2}, \"hit_mean_us\": {:.3}, \"hit_speedup\": {:.2}, \"hit_rate\": {:.4}, \
             \"resolves_uncached\": {}, \"resolves_cached\": {}, \"rpc_reduction\": {:.4}, \
             \"readahead_bytes\": {}}}{}\n",
            p.pattern,
            p.uncached.reads,
            p.uncached.mean_us,
            p.uncached.p99_us,
            p.uncached.gbps,
            p.cached.mean_us,
            p.cached.p99_us,
            p.cached.gbps,
            p.speedup(),
            p.cached.hit_mean_us,
            p.hit_speedup(),
            p.cached.hit_rate,
            p.uncached.resolves,
            p.cached.resolves,
            p.rpc_reduction(),
            p.cached.readahead_bytes,
            if i + 1 < r.sections.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    if let Some(o) = &r.offload {
        let run = |name: &str, x: &OffloadRun, last: bool| {
            format!(
                "    \"{}\": {{\"reads\": {}, \"bytes\": {}, \"mean_us\": {:.3}, \
                 \"p99_us\": {:.3}, \"gbps\": {:.3}, \"client_reconstructs\": {}, \
                 \"nic_reconstructs\": {}, \"gather_bytes_streamed\": {}}}{}\n",
                name,
                x.reads,
                x.bytes,
                x.mean_us,
                x.p99_us,
                x.gbps,
                x.client_reconstructs,
                x.nic_reconstructs,
                x.gather_bytes_streamed,
                if last { "" } else { "," }
            )
        };
        s.push_str("  \"offloaded_read\": {\n");
        s.push_str(&format!("    \"speedup\": {:.2},\n", o.speedup()));
        s.push_str(&run("cpu_fanout", &o.cpu, false));
        s.push_str(&run("offloaded", &o.offloaded, false));
        s.push_str(&run("degraded_cpu_fanout", &o.degraded_cpu, false));
        s.push_str(&run("degraded_offloaded", &o.degraded_offloaded, true));
        s.push_str("  },\n");
    }
    if r.snapshot_json.is_empty() {
        s.push_str("  \"metrics_snapshot\": null\n");
    } else {
        s.push_str(&format!("  \"metrics_snapshot\": {}\n", r.snapshot_json));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance bar, asserted deterministically (simulated
    /// time): ≥5x mean-latency improvement and a measured control-RPC
    /// reduction for cache-hit sequential reads, with a steady-state hit
    /// rate high enough that regressions fail this test.
    #[test]
    fn sequential_cache_hits_are_5x_and_shed_control_rpcs() {
        let (s, snapshot) = run_pattern("sequential", ReadPattern::Sequential, SEQ_READS);
        assert!(
            snapshot.contains("nadfs-metrics-v1"),
            "cached run produced no metrics snapshot"
        );
        assert!(
            s.hit_speedup() >= 5.0,
            "cache-hit speedup {:.1}x < 5x (uncached {:.1}us, hit {:.1}us)",
            s.hit_speedup(),
            s.uncached.mean_us,
            s.cached.hit_mean_us
        );
        assert!(
            s.speedup() >= 1.5 && s.cached.gbps > s.uncached.gbps * 2.0,
            "whole-stream improvement regressed: {:.1}x latency, {:.1} vs {:.1} GB/s",
            s.speedup(),
            s.cached.gbps,
            s.uncached.gbps
        );
        assert!(
            s.cached.hit_rate >= 0.8,
            "steady-state hit rate regressed: {:.2}",
            s.cached.hit_rate
        );
        assert_eq!(
            s.uncached.resolves, s.uncached.reads as u64,
            "uncached baseline resolves once per read"
        );
        assert!(
            s.cached.resolves < s.uncached.resolves / 4,
            "control-RPC reduction regressed: {}/{}",
            s.cached.resolves,
            s.uncached.resolves
        );
        assert!(s.cached.readahead_bytes > 0, "readahead never fired");
    }

    /// The read-offload acceptance bar: gather streaming beats the CPU
    /// fan-out on an uncached sequential scan, and in the offloaded
    /// degraded config every reconstruction runs on a storage NIC's EC
    /// engine — the client's `reconstruct_into` count stays at zero
    /// (proved via the read-phase metrics-snapshot delta).
    #[test]
    fn offloaded_streaming_beats_cpu_fanout_and_moves_reconstruction_to_the_nic() {
        let o = run_offload_section();
        assert!(
            o.speedup() > 1.0,
            "gather streaming lost to the CPU fan-out: {:.1}us vs {:.1}us",
            o.offloaded.mean_us,
            o.cpu.mean_us
        );
        assert_eq!(o.cpu.bytes, o.offloaded.bytes, "both scans read the file");
        assert!(
            o.offloaded.gather_bytes_streamed >= o.offloaded.bytes,
            "the whole scan must stream through gather responders"
        );
        assert_eq!(
            o.offloaded.client_reconstructs, 0,
            "healthy offloaded scan reconstructed on the client"
        );
        // Degraded configs: the CPU baseline reconstructs on the client,
        // the offloaded one exclusively on the NIC.
        assert!(
            o.degraded_cpu.client_reconstructs > 0,
            "degraded CPU baseline never exercised client reconstruction"
        );
        assert_eq!(
            o.degraded_offloaded.client_reconstructs, 0,
            "offloaded config must never invoke client-side reconstruct_into"
        );
        assert!(
            o.degraded_offloaded.nic_reconstructs > 0,
            "offloaded degraded scan never reached the NIC EC engine"
        );
        assert_eq!(
            o.degraded_cpu.bytes, o.degraded_offloaded.bytes,
            "degraded scans served identical volume"
        );
    }

    #[test]
    fn zipfian_hot_set_hits_and_renders() {
        let (s, snapshot_json) = run_pattern(
            "zipfian",
            ReadPattern::Zipfian { exponent: 2.0 },
            ZIPF_READS,
        );
        assert!(
            s.cached.hit_rate > 0.4,
            "hot set missed: {}",
            s.cached.hit_rate
        );
        assert!(s.speedup() > 1.0);
        let report = ReadCacheReport {
            sections: vec![s],
            offload: None,
            snapshot_json,
        };
        let out = render(&report);
        assert!(out.contains("zipfian"));
        assert!(out.contains("hit rate"));
        let json = to_json(&report);
        assert!(json.contains("\"bench\": \"read_cache\""));
        assert!(json.contains("\"hit_rate\""));
        // The whole BENCH_*.json document — snapshot embedded — must
        // parse, and the embedded snapshot must carry the pinned schema.
        let v = nadfs_simnet::telemetry::json::parse(&json).expect("bench JSON parses");
        let snap = v.get("metrics_snapshot").expect("snapshot embedded");
        assert_eq!(
            snap.get("schema")
                .and_then(nadfs_simnet::telemetry::json::Json::as_str),
            Some(nadfs_simnet::SNAPSHOT_SCHEMA)
        );
    }
}
