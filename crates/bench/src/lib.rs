//! # nadfs-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation. Each `figures::figXX` function runs the corresponding
//! experiment on the simulator and returns the formatted rows, annotated
//! with the paper's reference values so paper-vs-measured is visible at a
//! glance. `cargo bench` runs all of them (through the `figures` bench
//! target) plus Criterion microbenchmarks of the computational kernels.

pub mod dir_ops;
pub mod ec_throughput;
pub mod figures;
pub mod flow_control;
pub mod meta_shard;
pub mod read_cache;
pub mod report;

pub use report::Table;
