//! `cargo bench` entry point that regenerates every table and figure of
//! the paper (DESIGN.md §4 per-experiment index). Not a Criterion harness:
//! the output *is* the deliverable.
fn main() {
    // Respect `cargo bench -- --help`-style filter args minimally: any
    // argument is treated as a substring filter on figure names.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = |name: &str| {
        args.is_empty()
            || args
                .iter()
                .any(|a| !a.starts_with('-') && name.contains(a.as_str()))
            || args.iter().all(|a| a.starts_with('-'))
    };
    use nadfs_bench::figures as fig;
    type Job = (&'static str, fn() -> String);
    let jobs: Vec<Job> = vec![
        ("fig04", fig::fig04),
        ("fig06", fig::fig06),
        ("fig07", fig::fig07),
        ("fig09_k2", || fig::fig09_latency(2)),
        ("fig09_k4", || fig::fig09_latency(4)),
        ("fig09_goodput", fig::fig09_goodput),
        ("fig10", fig::fig10),
        ("fig11_table1", fig::fig11_table1),
        ("fig15", fig::fig15),
        ("fig16_table2", fig::fig16_table2),
        ("table3", fig::table3),
        ("ablation_interleave", fig::ablation_interleave),
        ("ablation_chunk_size", fig::ablation_chunk_size),
        ("ablation_queues", fig::ablation_queues),
        ("dir_ops", nadfs_bench::dir_ops::dir_ops),
    ];
    for (name, run) in jobs {
        if filter(name) {
            println!("--- {name} ---");
            print!("{}", run());
            println!();
        }
    }
}
