//! Criterion microbenchmarks of the computational kernels underneath the
//! simulation: GF(2^8) slice arithmetic, Reed-Solomon encode, SipHash
//! capability MACs, and raw discrete-event engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn gf_mul_acc(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256_mul_acc_slice");
    for size in [2048usize, 64 << 10, 1 << 20] {
        let src = vec![0xABu8; size];
        let mut dst = vec![0x5Au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| nadfs_gfec::gf256::mul_acc_slice(0x1D, black_box(&src), black_box(&mut dst)));
        });
    }
    g.finish();
}

fn gf_mul_acc_scalar_baseline(c: &mut Criterion) {
    // The seed byte-table walk, kept for regression comparison against the
    // wide-word kernel above.
    let mut g = c.benchmark_group("gf256_mul_acc_slice_scalar");
    let size = 1 << 20;
    let src = vec![0xABu8; size];
    let mut dst = vec![0x5Au8; size];
    g.throughput(Throughput::Bytes(size as u64));
    g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
        b.iter(|| {
            nadfs_gfec::gf256::scalar::mul_acc_slice(0x1D, black_box(&src), black_box(&mut dst))
        });
    });
    g.finish();
}

fn gf_xor_wide(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256_xor_slice");
    let size = 1 << 20;
    let src = vec![0x3Cu8; size];
    let mut dst = vec![0x5Au8; size];
    g.throughput(Throughput::Bytes(size as u64));
    g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
        b.iter(|| nadfs_gfec::gf256::xor_slice(black_box(&src), black_box(&mut dst)));
    });
    g.finish();
}

fn rs_encode_fused(c: &mut Criterion) {
    // encode_into with reused parity buffers: the fused, zero-alloc path.
    let mut g = c.benchmark_group("rs_encode_fused");
    for (k, m) in [(3usize, 2usize), (6, 3)] {
        let rs = nadfs_gfec::ReedSolomon::new(k, m).expect("params");
        let chunks: Vec<Vec<u8>> = (0..k).map(|j| vec![j as u8; 64 << 10]).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let mut parities: Vec<Vec<u8>> = vec![Vec::new(); m];
        g.throughput(Throughput::Bytes((k * (64 << 10)) as u64));
        g.bench_function(format!("rs({k},{m})_64KiB_chunks"), |b| {
            b.iter(|| {
                rs.encode_into(black_box(&refs), black_box(&mut parities))
                    .expect("encode")
            });
        });
    }
    g.finish();
}

fn stream_packet_pooled(c: &mut Criterion) {
    // One pooled per-packet step: intermediate parity into a recycled
    // buffer plus wide-XOR absorption — the steady-state cost of the
    // sPIN-TriEC inner loop.
    let mtu = 1978usize;
    let payload = vec![0xA7u8; mtu];
    let mut pool = nadfs_simnet::BufPool::new(8);
    let mut ipar = pool.get(mtu);
    let mut acc = nadfs_gfec::Accumulator::new(mtu, u32::MAX);
    let mut g = c.benchmark_group("stream_packet_pooled");
    g.throughput(Throughput::Bytes(mtu as u64));
    g.bench_function("ipar_mul_plus_xor_1978B", |b| {
        b.iter(|| {
            nadfs_gfec::intermediate_parity_into(0x1D, black_box(&payload), &mut ipar);
            black_box(acc.absorb(&ipar));
        });
    });
    g.finish();
}

fn rs_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_encode");
    for (k, m) in [(3usize, 2usize), (6, 3)] {
        let rs = nadfs_gfec::ReedSolomon::new(k, m).expect("params");
        let chunks: Vec<Vec<u8>> = (0..k).map(|j| vec![j as u8; 64 << 10]).collect();
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        g.throughput(Throughput::Bytes((k * (64 << 10)) as u64));
        g.bench_function(format!("rs({k},{m})_64KiB_chunks"), |b| {
            b.iter(|| rs.encode(black_box(&refs)).expect("encode"));
        });
    }
    g.finish();
}

fn rs_reconstruct(c: &mut Criterion) {
    let rs = nadfs_gfec::ReedSolomon::new(6, 3).expect("params");
    let chunks: Vec<Vec<u8>> = (0..6).map(|j| vec![j as u8 + 1; 64 << 10]).collect();
    let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    let parities = rs.encode(&refs).expect("encode");
    c.bench_function("rs(6,3)_reconstruct_3_erasures_64KiB", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = chunks
                .iter()
                .cloned()
                .map(Some)
                .chain(parities.iter().cloned().map(Some))
                .collect();
            shards[0] = None;
            shards[3] = None;
            shards[7] = None;
            rs.reconstruct(black_box(&mut shards)).expect("reconstruct");
        });
    });
}

fn siphash_capability(c: &mut Criterion) {
    let key = nadfs_wire::MacKey::from_seed(7);
    c.bench_function("capability_issue_and_verify", |b| {
        b.iter(|| {
            let cap = nadfs_wire::Capability::issue(
                black_box(&key),
                1,
                2,
                nadfs_wire::Rights::RW,
                1_000_000,
                3,
            );
            cap.verify(&key, 0, nadfs_wire::Rights::WRITE).expect("ok")
        });
    });
}

fn engine_throughput(c: &mut Criterion) {
    use nadfs_simnet::{Component, Ctx, Dur, Engine};
    use std::any::Any;
    struct Bouncer {
        left: u64,
    }
    struct Tick;
    impl Component for Bouncer {
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Box<dyn Any>) {
            if self.left > 0 {
                self.left -= 1;
                ctx.schedule_self(Dur::from_ns(10), Box::new(Tick));
            }
        }
    }
    c.bench_function("des_engine_100k_events", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            let id = e.add_component(Box::new(Bouncer { left: 100_000 }));
            e.schedule(Dur::ZERO, id, Box::new(Tick));
            e.run_to_completion();
            black_box(e.events_dispatched())
        });
    });
}

fn e2e_write_sim(c: &mut Criterion) {
    use nadfs_core::{ClusterSpec, FilePolicy, Job, SimCluster, StorageMode, WriteProtocol};
    c.bench_function("simulate_one_64KiB_spin_write", |b| {
        b.iter(|| {
            let spec = ClusterSpec::new(1, 1, StorageMode::Spin);
            let mut cl = SimCluster::build(spec);
            let f = cl.control.borrow_mut().create_file(0, FilePolicy::Plain);
            cl.submit(
                0,
                Job::Write {
                    file: f.id,
                    size: 64 << 10,
                    protocol: WriteProtocol::Spin,
                    seed: 0,
                },
            );
            cl.start();
            cl.run_until_writes(1, 1_000)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = gf_mul_acc, gf_mul_acc_scalar_baseline, gf_xor_wide,
              rs_encode, rs_encode_fused, rs_reconstruct,
              stream_packet_pooled, siphash_capability,
              engine_throughput, e2e_write_sim
}
criterion_main!(benches);
